// Package chaostest boots real cqad process topologies — N shard
// servers, a scatter-gather router, optionally a WAL-shipping follower
// — for fault-injection tests and benchmarks. It is the multi-shard
// successor of the store-smoke pattern: processes are real OS
// processes wired over loopback HTTP, killed with SIGKILL (never a
// graceful shutdown), and restarted on their original addresses so the
// router's fixed shard list keeps routing to them.
//
// The package is a test helper first (the chaos test lives next to it)
// and a library second (cmd/shardbench reuses Boot for its scaling
// measurement).
package chaostest

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

// BuildCqad builds the cqad binary into dir and returns its path. It
// resolves the command by module path, so it works from any working
// directory inside the module.
func BuildCqad(dir string) (string, error) {
	bin := filepath.Join(dir, "cqad")
	out, err := exec.Command("go", "build", "-o", bin, "cqa/cmd/cqad").CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("chaostest: building cqad: %v\n%s", err, out)
	}
	return bin, nil
}

// Proc is one managed cqad process. Kill sends SIGKILL; Start runs it
// (again) with the same arguments, so a killed shard restarts on its
// reserved port with its original data directory and recovers from its
// own WAL.
type Proc struct {
	Name string // role label: "shard0", "router", "follower"
	URL  string // base URL (fixed across restarts)

	bin      string
	args     []string
	env      []string // extra environment, e.g. GOMAXPROCS=1
	addrFile string
	logFile  string

	cmd  *exec.Cmd
	done chan struct{} // closed when the current process has been reaped
}

// Start launches the process and waits until it serves on its address.
func (p *Proc) Start() error {
	if p.Alive() {
		return fmt.Errorf("chaostest: %s already running", p.Name)
	}
	_ = os.Remove(p.addrFile)
	logf, err := os.OpenFile(p.logFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(p.bin, p.args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	cmd.Env = append(os.Environ(), p.env...)
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("chaostest: starting %s: %w", p.Name, err)
	}
	done := make(chan struct{})
	go func() {
		_ = cmd.Wait()
		logf.Close()
		close(done)
	}()
	p.cmd, p.done = cmd, done

	// The addr file appears once the listener is bound; the port is
	// reserved, so the address it names is p.URL.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(p.addrFile); err == nil && len(b) > 0 {
			return nil
		}
		select {
		case <-done:
			log, _ := os.ReadFile(p.logFile)
			return fmt.Errorf("chaostest: %s exited before listening:\n%s", p.Name, log)
		case <-time.After(20 * time.Millisecond):
		}
	}
	_ = p.Kill()
	return fmt.Errorf("chaostest: %s did not listen within 15s", p.Name)
}

// Kill SIGKILLs the process and reaps it. Killing a dead process is a
// no-op.
func (p *Proc) Kill() error {
	if p.cmd == nil {
		return nil
	}
	_ = p.cmd.Process.Kill()
	<-p.done
	p.cmd = nil
	return nil
}

// Alive reports whether the process is running.
func (p *Proc) Alive() bool {
	if p.cmd == nil {
		return false
	}
	select {
	case <-p.done:
		return false
	default:
		return true
	}
}

// WaitHealthy polls GET /healthz until it answers 200 or the deadline
// passes.
func (p *Proc) WaitHealthy(d time.Duration) error {
	deadline := time.Now().Add(d)
	client := &http.Client{Timeout: time.Second}
	for time.Now().Before(deadline) {
		resp, err := client.Get(p.URL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("chaostest: %s not healthy within %s", p.Name, d)
}

// BootOptions configures a topology.
type BootOptions struct {
	// Bin is the cqad binary (see BuildCqad).
	Bin string
	// Dir is the scratch directory for data dirs, addr files, and logs.
	Dir string
	// Shards is the shard server count; ≤ 0 selects 4.
	Shards int
	// Durable gives every shard its own -data directory, so a SIGKILLed
	// shard recovers from its WAL on restart.
	Durable bool
	// Follower adds a WAL-shipping follower of shard FollowerShard and
	// registers it as that shard's read replica on the router.
	Follower bool
	// FollowerShard selects which shard the follower replicates; the
	// zero value keeps the historical shard-0 placement. Out-of-range
	// values fail Boot.
	FollowerShard int
	// ShardEnv is extra environment for the shard processes (the bench
	// sets GOMAXPROCS=1 to pin per-shard compute).
	ShardEnv []string
	// ShardArgs, RouterArgs, FollowerArgs append extra cqad flags.
	ShardArgs, RouterArgs, FollowerArgs []string
}

// Topology is a booted process set: Shards[i] serve slices, Router
// scatter-gathers over them, Follower (optional) replicates shard
// FollowerShard.
type Topology struct {
	Shards        []*Proc
	Router        *Proc
	Follower      *Proc
	FollowerShard int
}

// Boot reserves one loopback port per process, starts the shard
// servers, the router (and the follower), and waits until every
// process serves. Callers must Close the topology.
func Boot(opt BootOptions) (*Topology, error) {
	if opt.Shards <= 0 {
		opt.Shards = 4
	}
	if opt.Follower && (opt.FollowerShard < 0 || opt.FollowerShard >= opt.Shards) {
		return nil, fmt.Errorf("chaostest: follower shard %d out of range (have %d shards)", opt.FollowerShard, opt.Shards)
	}
	nPorts := opt.Shards + 1
	if opt.Follower {
		nPorts++
	}
	ports, err := reservePorts(nPorts)
	if err != nil {
		return nil, err
	}
	tp := &Topology{}
	fail := func(err error) (*Topology, error) {
		tp.Close()
		return nil, err
	}
	newProc := func(name string, port int, env []string, args ...string) *Proc {
		addrFile := filepath.Join(opt.Dir, name+".addr")
		return &Proc{
			Name:     name,
			URL:      fmt.Sprintf("http://127.0.0.1:%d", port),
			bin:      opt.Bin,
			env:      env,
			addrFile: addrFile,
			logFile:  filepath.Join(opt.Dir, name+".log"),
			args: append([]string{
				"-addr", fmt.Sprintf("127.0.0.1:%d", port),
				"-addr-file", addrFile,
			}, args...),
		}
	}

	shardURLs := make([]string, opt.Shards)
	for i := 0; i < opt.Shards; i++ {
		args := append([]string(nil), opt.ShardArgs...)
		if opt.Durable {
			args = append(args, "-data", filepath.Join(opt.Dir, fmt.Sprintf("shard%d-data", i)))
		}
		p := newProc(fmt.Sprintf("shard%d", i), ports[i], opt.ShardEnv, args...)
		tp.Shards = append(tp.Shards, p)
		shardURLs[i] = p.URL
		if err := p.Start(); err != nil {
			return fail(err)
		}
	}

	if opt.Follower {
		tp.FollowerShard = opt.FollowerShard
		args := append([]string{"-follow", shardURLs[opt.FollowerShard], "-follower-id", "chaos-follower"}, opt.FollowerArgs...)
		tp.Follower = newProc("follower", ports[opt.Shards+1], nil, args...)
		if err := tp.Follower.Start(); err != nil {
			return fail(err)
		}
	}

	routerArgs := append([]string{"-route", strings.Join(shardURLs, ",")}, opt.RouterArgs...)
	if opt.Follower {
		// The replicated shard's reads prefer the replica; the other
		// slots stay empty.
		replicas := make([]string, opt.Shards)
		replicas[opt.FollowerShard] = tp.Follower.URL
		routerArgs = append(routerArgs, "-route-replicas", strings.Join(replicas, ","))
	}
	tp.Router = newProc("router", ports[opt.Shards], nil, routerArgs...)
	if err := tp.Router.Start(); err != nil {
		return fail(err)
	}
	for _, p := range tp.all() {
		if err := p.WaitHealthy(10 * time.Second); err != nil {
			return fail(err)
		}
	}
	return tp, nil
}

func (tp *Topology) all() []*Proc {
	out := append([]*Proc(nil), tp.Shards...)
	if tp.Follower != nil {
		out = append(out, tp.Follower)
	}
	if tp.Router != nil {
		out = append(out, tp.Router)
	}
	return out
}

// Close SIGKILLs every process in the topology.
func (tp *Topology) Close() {
	for _, p := range tp.all() {
		_ = p.Kill()
	}
}

// reservePorts binds n loopback listeners on ephemeral ports, records
// the ports, and closes the listeners. The tiny window between close
// and the cqad bind is the standard addr-file trade-off; a clash fails
// the Start loudly rather than silently.
func reservePorts(n int) ([]int, error) {
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	ports := make([]int, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, l)
		ports[i] = l.Addr().(*net.TCPAddr).Port
	}
	return ports, nil
}
