package shard

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cqa/internal/store"
)

// shardSuffix matches the reserved "<name>.s<i>" shard store naming.
// Plain basenames are pre-sharding single-shard databases.
var shardSuffix = regexp.MustCompile(`^(.+)\.s(\d+)$`)

// Set is a named collection of sharded stores sharing one data
// directory, one Options, and one default shard count. It is the
// sharded successor of store.Set: discovery groups "<name>.s<i>" files
// into one n-shard member and adopts plain "<name>" files as
// single-shard members, so pre-sharding data directories keep working.
// Safe for concurrent use.
type Set struct {
	opt    store.Options
	shards int

	mu sync.Mutex
	m  map[string]*Sharded
}

// OpenSet opens every database found in opt.Dir. shards is the shard
// count for databases created later; existing databases keep the count
// their files imply. With opt.Dir == "" the set starts empty and Create
// makes memory-only members.
func OpenSet(opt store.Options, shards int) (*Set, error) {
	if shards <= 0 {
		shards = 1
	}
	set := &Set{opt: opt, shards: shards, m: make(map[string]*Sharded)}
	if opt.Dir == "" {
		return set, nil
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(opt.Dir)
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int) // logical name → shard count
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		base := e.Name()
		switch {
		case strings.HasSuffix(base, ".wal"):
			base = strings.TrimSuffix(base, ".wal")
		case strings.HasSuffix(base, ".snap"):
			base = strings.TrimSuffix(base, ".snap")
		default:
			continue
		}
		if m := shardSuffix.FindStringSubmatch(base); m != nil {
			i, err := strconv.Atoi(m[2])
			if err == nil && i >= 0 {
				if i+1 > counts[m[1]] {
					counts[m[1]] = i + 1
				}
				continue
			}
		}
		if counts[base] < 1 {
			counts[base] = 1
		}
	}
	for name, n := range counts {
		sh, err := NewSharded(name, n, opt)
		if err != nil {
			set.CloseAll()
			return nil, fmt.Errorf("shard: opening %s: %w", name, err)
		}
		set.m[name] = sh
	}
	return set, nil
}

// ShardCount returns the shard count used for new databases.
func (s *Set) ShardCount() int { return s.shards }

// Get returns the named database, or nil.
func (s *Set) Get(name string) *Sharded {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name]
}

// Names returns the member names, sorted.
func (s *Set) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for n := range s.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Create opens a fresh database with the set's shard count (durable
// when the set has a data directory). It fails with store.ErrExists for
// a taken name.
func (s *Set) Create(name string) (*Sharded, error) {
	if err := store.ValidName(name); err != nil {
		return nil, err
	}
	if shardSuffix.MatchString(name) {
		return nil, fmt.Errorf("shard: name %q uses the reserved .s<i> shard suffix", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[name]; ok {
		return nil, fmt.Errorf("%w: %s", store.ErrExists, name)
	}
	sh, err := NewSharded(name, s.shards, s.opt)
	if err != nil {
		return nil, err
	}
	s.m[name] = sh
	return sh, nil
}

// Adopt adds an existing sharded database (typically wrapping preloaded
// or replica stores) under its own name.
func (s *Set) Adopt(sh *Sharded) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[sh.Name()]; ok {
		return fmt.Errorf("%w: %s", store.ErrExists, sh.Name())
	}
	s.m[sh.Name()] = sh
	return nil
}

// CloseAll closes every member, returning the first error.
func (s *Set) CloseAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, sh := range s.m {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
