package shard_test

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"cqa/internal/db"
	"cqa/internal/engine"
	"cqa/internal/schema"
	"cqa/internal/shard"
	"cqa/internal/store"
)

// TestShardedConcurrencyWithFollowers drives 32 goroutines at a 4-shard
// store: writers through the router facade, readers evaluating on its
// views, live WAL streams into one follower replica per shard, and
// readers evaluating on the follower's views — the full serving
// topology in one process, for the race detector. At the end the
// followers must have converged to the primary exactly.
func TestShardedConcurrencyWithFollowers(t *testing.T) {
	const (
		writers         = 8
		primaryReaders  = 8
		followerReaders = 8
		nShards         = 4 // plus nShards stream servers and nShards appliers
		writesPer       = 150
	)

	sh, err := shard.NewSharded("race", nShards, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if _, err := sh.Declare("R", 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Declare("S", 2, 1); err != nil {
		t.Fatal(err)
	}

	eng := engine.New(engine.Options{CacheSize: 16})
	defer eng.Close()
	queries := []schema.Query{
		schema.NewQuery(schema.Pos(schema.NewAtom("R", 1, schema.Var("x"), schema.Var("y")))),
		schema.NewQuery(schema.Pos(schema.NewAtom("R", 1, schema.Const("k3"), schema.Var("y")))),
		schema.NewQuery(
			schema.Pos(schema.NewAtom("R", 1, schema.Var("x"), schema.Var("y"))),
			schema.Pos(schema.NewAtom("S", 1, schema.Var("y"), schema.Var("z")))),
	}

	// One follower replica per shard, fed by a live Follow stream over a
	// pipe; followers publish through their own Sharded facade.
	replicas := make([]*store.Replica, nShards)
	replicaStores := make([]*store.Store, nShards)
	for i := range replicas {
		replicas[i] = store.NewReplica(fmt.Sprintf("race.s%d", i))
		replicaStores[i] = replicas[i].Store()
	}
	follower := shard.NewShardedFromStores("race", replicaStores)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	for i := 0; i < nShards; i++ {
		pr, pw := io.Pipe()
		wg.Add(2)
		go func(i int, pw *io.PipeWriter) {
			defer wg.Done()
			err := sh.Shard(i).ServeStream(pw, store.StreamOptions{
				From: 0, Follower: fmt.Sprintf("f%d", i), Follow: true, Stop: stop,
			})
			pw.CloseWithError(err)
		}(i, pw)
		go func(i int, pr *io.PipeReader) {
			defer wg.Done()
			defer pr.Close() // unblocks the server if we bail on an error
			if err := replicas[i].ApplyStream(pr); err != nil {
				t.Errorf("replica %d: %v", i, err)
			}
			follower.Refresh()
		}(i, pr)
	}

	var writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writerWg.Done()
			for i := 0; i < writesPer; i++ {
				rel := "R"
				if (w+i)%3 == 0 {
					rel = "S"
				}
				f := db.F(rel, fmt.Sprintf("k%d", i%7), fmt.Sprintf("v%d.%d", w, i%5))
				var err error
				if i%5 == 4 {
					_, err = sh.Delete(f)
				} else {
					_, err = sh.Insert(f)
				}
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	readerLoop := func(view func() *shard.View) {
		defer wg.Done()
		var lastV uint64
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := view()
			if v.Version() < lastV {
				t.Errorf("view version went backwards: %d → %d", lastV, v.Version())
				return
			}
			lastV = v.Version()
			if _, err := eng.CertainSharded(queries[i%len(queries)], v); err != nil {
				t.Errorf("reader: %v", err)
				return
			}
		}
	}
	for r := 0; r < primaryReaders; r++ {
		wg.Add(1)
		go readerLoop(sh.View)
	}
	for r := 0; r < followerReaders; r++ {
		wg.Add(1)
		go readerLoop(func() *shard.View { return follower.Refresh() })
	}

	writerWg.Wait()
	close(stop)
	wg.Wait()

	// Catch-up: one final non-follow stream per shard brings every
	// replica to the primary's head, and the states must match exactly.
	for i := 0; i < nShards; i++ {
		pr, pw := io.Pipe()
		go func(i int, pw *io.PipeWriter) {
			pw.CloseWithError(sh.Shard(i).ServeStream(pw, store.StreamOptions{From: replicas[i].Version()}))
		}(i, pw)
		if err := replicas[i].ApplyStream(pr); err != nil {
			t.Fatalf("final catch-up shard %d: %v", i, err)
		}
	}
	fv := follower.Refresh()
	pv := sh.View()
	if fv.Version() != pv.Version() {
		t.Fatalf("follower at global version %d, primary at %d", fv.Version(), pv.Version())
	}
	if fu, pu := fv.Union().String(), pv.Union().String(); fu != pu {
		t.Fatalf("follower diverged from primary:\n%s\nvs\n%s", fu, pu)
	}
	for _, q := range queries {
		a, err := eng.CertainSharded(q, pv)
		if err != nil {
			t.Fatal(err)
		}
		b, err := eng.CertainSharded(q, fv)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("verdicts diverged on %s: primary %v, follower %v", q, a, b)
		}
	}
}
