package shard

import "cqa/internal/schema"

// Touched computes which of n shards a query's answer can depend on.
// An atom whose key positions are all constants pins a single block —
// the one with exactly those key values — and therefore a single shard;
// an atom with a variable in a key position can match blocks anywhere.
// The query touches the union over its atoms (negated atoms count: a
// certain answer depends on what their blocks contain).
//
// The returned slice lists touched shards in ascending order; all
// reports that every shard is touched (any variable-key atom). Touched
// is the degraded-serving predicate: a query whose touched set avoids a
// dead shard can still be answered exactly.
func Touched(q schema.Query, n int) (shards []int, all bool) {
	return TouchedOwned(q, n, func(rel string, key []string) int { return Owner(rel, key, n) })
}

// TouchedOwned is Touched under an explicit block-placement function —
// View.Owner when pruning against a view, so reads follow whatever
// placement wrote the data.
func TouchedOwned(q schema.Query, n int, owner func(rel string, key []string) int) (shards []int, all bool) {
	if n <= 1 {
		return []int{0}, true
	}
	seen := make(map[int]bool)
	for _, a := range q.Atoms() {
		if !a.KeyIsGround() {
			out := make([]int, n)
			for i := range out {
				out[i] = i
			}
			return out, true
		}
		key := make([]string, 0, a.Key)
		for _, t := range a.KeyTerms() {
			key = append(key, t.Name)
		}
		seen[owner(a.Rel, key)] = true
	}
	for i := 0; i < n; i++ {
		if seen[i] {
			shards = append(shards, i)
		}
	}
	return shards, false
}
