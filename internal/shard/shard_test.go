package shard_test

import (
	"fmt"
	"testing"

	"cqa/internal/db"
	"cqa/internal/schema"
	"cqa/internal/shard"
	"cqa/internal/store"
)

func TestOwnerKeepsBlocksWholeAndSpreads(t *testing.T) {
	// Same block → same shard, whatever the non-key columns do.
	if a, b := shard.Owner("R", []string{"k1"}, 4), shard.Owner("R", []string{"k1"}, 4); a != b {
		t.Fatalf("same block routed to %d and %d", a, b)
	}
	// Boundary confusion: ("ab","c") and ("a","bc") are different blocks.
	if shard.Owner("R", []string{"ab", "c"}, 1<<30) == shard.Owner("R", []string{"a", "bc"}, 1<<30) {
		t.Fatal("key boundary not separated in the hash")
	}
	// All shards get some share of a spread of keys.
	hit := make(map[int]int)
	for i := 0; i < 1000; i++ {
		hit[shard.Owner("R", []string{fmt.Sprintf("k%d", i)}, 4)]++
	}
	for i := 0; i < 4; i++ {
		if hit[i] == 0 {
			t.Fatalf("shard %d owns no blocks out of 1000: %v", i, hit)
		}
	}
}

func TestTouchedPinsGroundKeys(t *testing.T) {
	ground := schema.NewQuery(schema.Pos(schema.NewAtom("R", 1, schema.Const("k"), schema.Var("y"))))
	shards, all := shard.Touched(ground, 4)
	if all || len(shards) != 1 {
		t.Fatalf("ground-key query touches %v (all=%v), want exactly one shard", shards, all)
	}
	if want := shard.Owner("R", []string{"k"}, 4); shards[0] != want {
		t.Fatalf("touched shard %d, owner %d", shards[0], want)
	}
	free := schema.NewQuery(schema.Pos(schema.NewAtom("R", 1, schema.Var("x"), schema.Var("y"))))
	if _, all := shard.Touched(free, 4); !all {
		t.Fatal("variable-key query must touch all shards")
	}
}

func TestSetDiscoversShardedAndLegacyStores(t *testing.T) {
	dir := t.TempDir()
	opt := store.Options{Dir: dir}

	// A legacy single-store database, written through the plain store.
	legacy, err := store.Open("old", opt)
	if err != nil {
		t.Fatal(err)
	}
	legacy.Declare("R", 2, 1)
	legacy.Insert(db.F("R", "a", "1"))
	legacy.Close()

	set, err := shard.OpenSet(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := set.Create("new")
	if err != nil {
		t.Fatal(err)
	}
	if sh.NumShards() != 4 {
		t.Fatalf("created with %d shards, want 4", sh.NumShards())
	}
	sh.Declare("S", 2, 1)
	for i := 0; i < 20; i++ {
		sh.Insert(db.F("S", fmt.Sprintf("k%d", i), "v"))
	}
	wantVersion := sh.Version()
	wantState := sh.View().Union().String()
	if err := set.CloseAll(); err != nil {
		t.Fatal(err)
	}

	// Rediscovery groups the .s<i> files back into one 4-shard member
	// and adopts the plain file as a 1-shard member.
	set2, err := shard.OpenSet(opt, 2) // different default must not matter
	if err != nil {
		t.Fatal(err)
	}
	defer set2.CloseAll()
	got := set2.Get("new")
	if got == nil || got.NumShards() != 4 {
		t.Fatalf("rediscovered %v, want 4-shard member (names %v)", got, set2.Names())
	}
	if got.Version() != wantVersion || got.View().Union().String() != wantState {
		t.Fatalf("recovered state diverged: v%d vs v%d", got.Version(), wantVersion)
	}
	old := set2.Get("old")
	if old == nil || old.NumShards() != 1 {
		t.Fatalf("legacy store not adopted as single shard (names %v)", set2.Names())
	}
	if !old.View().Shard(0).Has(db.F("R", "a", "1")) {
		t.Fatal("legacy data lost")
	}
	if _, err := set2.Create("x.s3"); err == nil {
		t.Fatal("reserved shard-suffix name accepted")
	}
}
