package shard_test

import (
	"fmt"
	"math/rand"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/engine"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/shard"
	"cqa/internal/store"
)

// TestDifferentialShardedVsSingleVsNaive is the oracle check for
// scatter-gather: 500 random (query, database, write-batch) cases where
// the sharded evaluation, the single-store evaluation, and brute-force
// repair enumeration must agree — on the default block-hash placement
// AND on an adversarial placement that piles every block onto one
// shard (empty co-shards must not flip a verdict).
func TestDifferentialShardedVsSingleVsNaive(t *testing.T) {
	const cases = 500
	const shards = 4

	rng := rand.New(rand.NewSource(20180610))
	qOpts := gen.DefaultQueryOptions()
	dbOpts := gen.DBOptions{BlocksPerRelation: 2, MaxBlockSize: 2, DomainPerVariable: 3, ConstantBias: 0.7}

	eng := engine.New(engine.Options{CacheSize: 64, ResultCacheSize: 256})
	defer eng.Close()

	done := 0
	for done < cases {
		q := gen.Query(rng, qOpts)
		cls, err := core.Classify(q)
		if err != nil {
			t.Fatalf("classify %s: %v", q, err)
		}
		if cls.Verdict != core.VerdictFO {
			continue
		}
		done++
		seed := gen.Database(rng, q, dbOpts)
		batch := gen.Database(rng, q, dbOpts) // the write batch riding on top

		// Single-store reference: seed, then the write batch, then a
		// random deletion sweep.
		single := store.NewMem("ref", nil)
		if _, err := single.ApplyDB(seed); err != nil {
			t.Fatalf("case %d: single ApplyDB: %v", done, err)
		}
		spread, err := shard.NewSharded("t", shards, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		piled, err := shard.NewSharded("t", shards, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		piled.SetHash(func(string, []string, int) int { return shards - 1 })
		for _, sh := range []*shard.Sharded{spread, piled} {
			if _, err := sh.ApplyDB(seed); err != nil {
				t.Fatalf("case %d: sharded ApplyDB: %v", done, err)
			}
			if _, err := sh.ApplyDB(batch); err != nil {
				t.Fatalf("case %d: sharded write batch: %v", done, err)
			}
		}
		if _, err := single.ApplyDB(batch); err != nil {
			t.Fatalf("case %d: single write batch: %v", done, err)
		}
		var dels []db.Fact
		for _, rel := range seed.RelationNames() {
			for _, f := range seed.Facts(rel) {
				if rng.Intn(4) == 0 {
					dels = append(dels, f)
				}
			}
		}
		if len(dels) > 0 {
			if _, err := single.Delete(dels...); err != nil {
				t.Fatalf("case %d: single delete: %v", done, err)
			}
			for _, sh := range []*shard.Sharded{spread, piled} {
				if _, err := sh.Delete(dels...); err != nil {
					t.Fatalf("case %d: sharded delete: %v", done, err)
				}
			}
		}

		ref := single.Snapshot()
		want := naive.IsCertain(q, ref.DB)
		got, err := eng.Certain(q, ref.DB)
		if err != nil {
			t.Fatalf("case %d: single engine: %v", done, err)
		}
		if got != want {
			t.Fatalf("case %d: single engine = %v, naive = %v\nquery: %s\ndb:\n%s",
				done, got, want, q, ref.DB)
		}

		for label, sh := range map[string]*shard.Sharded{"spread": spread, "piled": piled} {
			view := sh.View()
			// The sharded state must reconstruct the reference exactly.
			if u, r := view.Union().String(), ref.DB.String(); u != r {
				t.Fatalf("case %d (%s): sharded union diverged from reference:\n%s\nvs\n%s",
					done, label, u, r)
			}
			sg, err := eng.CertainSharded(q, view)
			if err != nil {
				t.Fatalf("case %d (%s): sharded eval: %v", done, label, err)
			}
			if sg != want {
				t.Fatalf("case %d (%s): sharded = %v, naive = %v\nquery: %s\ndb:\n%s",
					done, label, sg, want, q, ref.DB)
			}
			// Versioned path: a miss then an exact-version hit.
			dbID := fmt.Sprintf("case%d-%s", done, label)
			v1, hit1, err := eng.CertainShardedVersioned(q, dbID, view)
			if err != nil {
				t.Fatal(err)
			}
			v2, hit2, err := eng.CertainShardedVersioned(q, dbID, view)
			if err != nil {
				t.Fatal(err)
			}
			if v1 != want || v2 != want {
				t.Fatalf("case %d (%s): versioned sharded = %v/%v, want %v", done, label, v1, v2, want)
			}
			if hit1 || !hit2 {
				t.Fatalf("case %d (%s): cache hits %v/%v, want false/true", done, label, hit1, hit2)
			}
			sh.Close()
		}
	}
}
