package planner

import (
	"fmt"

	"cqa/internal/db"
)

// RelStats snapshots the statistics of one relation as the planner saw
// them on one interned database snapshot.
type RelStats struct {
	// Rel is the relation name; the remaining fields are zero when the
	// snapshot does not declare it (the relation is empty).
	Rel string `json:"rel"`
	// Facts is the stored tuple count.
	Facts int `json:"facts"`
	// Blocks is the number of blocks (maximal key-equal groups).
	Blocks int `json:"blocks"`
	// MaxBlock is the size of the largest block; 1 means the relation is
	// consistent.
	MaxBlock int `json:"maxBlock"`
}

// Decision records one strategy selection for a (plan, snapshot) pair:
// the db-independent strategy label, the justification (augmented with
// what the statistics imply for this snapshot), and the statistics
// consulted. It is what explain output serializes as "planDecision".
// A Decision is immutable and safe to share across goroutines.
type Decision struct {
	Strategy string     `json:"strategy"`
	Reason   string     `json:"reason"`
	Stats    []RelStats `json:"stats,omitempty"`
}

// Decide records the plan's decision against one interned snapshot. The
// statistics refine the reason but never flip the strategy: the label is
// a function of the query class alone, so explain output, metrics, and
// batch evaluation stay consistent for one query whatever databases it
// meets.
func (p *Plan) Decide(ix *db.Interned) *Decision {
	d := &Decision{Strategy: p.Strategy, Reason: p.Reason}
	for _, rel := range p.rels {
		st := RelStats{Rel: rel}
		if r := ix.Relation(rel); r != nil {
			st.Facts = r.Rows()
			st.Blocks = r.NumBlocks()
			st.MaxBlock = r.MaxBlockSize()
		}
		d.Stats = append(d.Stats, st)
	}
	if p.Class == ClassMatching || p.Class == ClassReachability {
		// rels[0] is the positive relation for the pattern classes.
		switch {
		case d.Stats[0].Facts == 0:
			d.Reason += "; positive relation empty on this snapshot: trivially not certain"
		case maxBlockOver(d.Stats) <= 1:
			d.Reason += "; every block is a singleton: the snapshot has exactly one repair"
		default:
			d.Reason += fmt.Sprintf("; %d facts in %d blocks over %d relations",
				totalFacts(d.Stats), totalBlocks(d.Stats), len(d.Stats))
		}
	}
	return d
}

func maxBlockOver(stats []RelStats) int {
	m := 0
	for _, s := range stats {
		if s.MaxBlock > m {
			m = s.MaxBlock
		}
	}
	return m
}

func totalFacts(stats []RelStats) int {
	n := 0
	for _, s := range stats {
		n += s.Facts
	}
	return n
}

func totalBlocks(stats []RelStats) int {
	n := 0
	for _, s := range stats {
		n += s.Blocks
	}
	return n
}
