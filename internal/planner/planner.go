// Package planner is the meta-engine strategy selector: given one query
// it names the cheapest sound evaluation strategy, and given a database
// snapshot it records why (the decision plus the relation statistics it
// consulted). The engine caches the resulting Plan alongside the prepared
// rewriting and reports the decision through /v1/classify, explain
// output, and the eval_total{strategy=…} metric.
//
// The classification follows the paper's dichotomy (Koutris & Wijsen,
// PODS 2018). CERTAINTY(q) for an acyclic attack graph is FO-rewritable
// and served by the compiled evaluator upstream of this package. On the
// cyclic side the problem is L- or NL-hard — not in FO — but Section 5's
// hardness reductions run backwards too: for the recognized shapes a
// falsifying repair is a bipartite-matching or a graph-orientation
// witness, so the query is decidable in polynomial time instead of by
// exponential repair enumeration. The planner recognizes:
//
//   - the two-atom mutual-negation pattern {P(u|v), ¬N(v|u)} (the paper's
//     q1 up to renaming, Lemma 5.2): served by Hopcroft–Karp bipartite
//     matching over the mutual-fact graph;
//   - the all-key edge pattern {E(x,y), ¬B(k|v), ¬C(k'|v')} with
//     {k,v} = {k',v'} = {x,y} (the paper's q2 up to renaming and
//     orientation, Lemma 5.3's UFA shape): served by union-find
//     reachability — a falsifying repair is a degree-one orientation,
//     which exists iff every connected component has at most as many
//     edges as vertices.
//
// Everything else on the cyclic side falls back to naive repair
// enumeration. Strategy labels are a function of the query class alone —
// never of the database — so explain output, metrics, and batch
// evaluation all report the same label for the same query; per-database
// statistics are recorded in the Decision, not used to flip strategies.
package planner

import (
	"fmt"

	"cqa/internal/schema"
)

// Class is the planner's query classification.
type Class string

// Classes assigned by New.
const (
	// ClassFO: CERTAINTY(q) is in FO; the compiled rewriting upstream
	// serves it and the planner stands aside.
	ClassFO Class = "fo"
	// ClassMatching: the two-atom mutual-negation pattern; served by
	// bipartite matching.
	ClassMatching Class = "matching"
	// ClassReachability: the all-key edge pattern with two negated
	// simple-key atoms; served by union-find reachability.
	ClassReachability Class = "reachability"
	// ClassHard: cyclic with no specialized decider; served by repair
	// enumeration.
	ClassHard Class = "hard"
)

// Strategy labels for the non-FO classes, as carried in explain output
// and the eval_total{strategy=…} metric label. FO strategies (compiled,
// tree-walk, …) are named by the engine, which knows its own options.
const (
	StrategyMatching     = "matching"
	StrategyReachability = "reachability"
	StrategyNaive        = "naive-repair"
)

// Plan is the per-query strategy selection: the class, the strategy
// label the engine will report and execute for non-FO queries, the
// justification, and the pattern bindings the deciders need. A Plan is
// immutable after New and safe for unbounded concurrent use.
type Plan struct {
	Class Class
	// Strategy is the db-independent strategy label for non-FO classes
	// ("matching", "reachability", "naive-repair"); empty for ClassFO.
	Strategy string
	// Reason justifies the classification in one sentence.
	Reason string

	// rels lists the relations whose statistics Decide snapshots:
	// positive atom first for the pattern classes, query order otherwise.
	rels []string
	// pos is the positive atom's relation; negs the negated atoms'
	// relations (negs[1] is set only for ClassReachability).
	pos  string
	negs [2]string
	// negKeyPos maps each negated atom of the reachability pattern to the
	// position (0 or 1) of the positive atom's term that is its key.
	negKeyPos [2]int
}

// New classifies q and returns its plan. inFO reports whether the
// upstream classification found CERTAINTY(q) to be FO-rewritable — the
// pattern shapes below are decided by their attack graph like any other
// query, so an FO-rewritable instance of a shape keeps the FO path.
// q must be validated (schema.Query.Validate).
func New(q schema.Query, inFO bool) *Plan {
	if inFO {
		return &Plan{
			Class:  ClassFO,
			Reason: "acyclic attack graph: CERTAINTY(q) has a consistent first-order rewriting",
			rels:   queryRels(q),
		}
	}
	if p := recognizeMatching(q); p != nil {
		return p
	}
	if p := recognizeReachability(q); p != nil {
		return p
	}
	return &Plan{
		Class:    ClassHard,
		Strategy: StrategyNaive,
		Reason:   "cyclic attack graph with no recognized graph-decider shape: repair enumeration",
		rels:     queryRels(q),
	}
}

// recognizeMatching matches {P(u|v), ¬N(v|u)} with u ≠ v: two binary
// simple-key atoms over distinct variables, the negated atom's key being
// the positive atom's value and vice versa (the paper's q1 up to
// renaming).
func recognizeMatching(q schema.Query) *Plan {
	if len(q.Lits) != 2 {
		return nil
	}
	pos, negs := q.Positive(), q.Negated()
	if len(pos) != 1 || len(negs) != 1 {
		return nil
	}
	p, n := pos[0], negs[0]
	if !binarySimpleKeyVars(p) || !binarySimpleKeyVars(n) {
		return nil
	}
	if n.Terms[0].Name != p.Terms[1].Name || n.Terms[1].Name != p.Terms[0].Name {
		return nil
	}
	return &Plan{
		Class:    ClassMatching,
		Strategy: StrategyMatching,
		Reason: fmt.Sprintf("mutual-negation pattern {%s(u|v), ¬%s(v|u)}: a falsifying repair is a left-saturating matching of %s-blocks into mutual facts (Hopcroft–Karp)",
			p.Rel, n.Rel, p.Rel),
		rels: []string{p.Rel, n.Rel},
		pos:  p.Rel,
		negs: [2]string{n.Rel, ""},
	}
}

// recognizeReachability matches {E(x,y), ¬B(k|v), ¬C(k'|v')} where E is
// all-key over distinct variables x ≠ y and each negated atom is binary
// simple-key with {key, value} = {x, y}, key ≠ value — the paper's q2 up
// to renaming and per-atom orientation.
func recognizeReachability(q schema.Query) *Plan {
	if len(q.Lits) != 3 {
		return nil
	}
	pos, negs := q.Positive(), q.Negated()
	if len(pos) != 1 || len(negs) != 2 {
		return nil
	}
	e := pos[0]
	if e.Arity() != 2 || !e.AllKey() {
		return nil
	}
	x, y := e.Terms[0], e.Terms[1]
	if !x.IsVar || !y.IsVar || x.Name == y.Name {
		return nil
	}
	plan := &Plan{
		Class:    ClassReachability,
		Strategy: StrategyReachability,
		rels:     []string{e.Rel},
		pos:      e.Rel,
	}
	for i, n := range negs {
		if !binarySimpleKeyVars(n) {
			return nil
		}
		switch {
		case n.Terms[0].Name == x.Name && n.Terms[1].Name == y.Name:
			plan.negKeyPos[i] = 0
		case n.Terms[0].Name == y.Name && n.Terms[1].Name == x.Name:
			plan.negKeyPos[i] = 1
		default:
			return nil
		}
		plan.negs[i] = n.Rel
		plan.rels = append(plan.rels, n.Rel)
	}
	plan.Reason = fmt.Sprintf("all-key edge pattern {%s(x,y), ¬%s, ¬%s}: a falsifying repair assigns each %s-edge to one covering block, which exists iff no component has more edges than vertices (union-find)",
		e.Rel, plan.negs[0], plan.negs[1], e.Rel)
	return plan
}

// binarySimpleKeyVars reports whether a is a binary simple-key atom over
// two distinct variables.
func binarySimpleKeyVars(a schema.Atom) bool {
	return a.Arity() == 2 && a.Key == 1 &&
		a.Terms[0].IsVar && a.Terms[1].IsVar &&
		a.Terms[0].Name != a.Terms[1].Name
}

func queryRels(q schema.Query) []string {
	atoms := q.Atoms()
	rels := make([]string, len(atoms))
	for i, a := range atoms {
		rels[i] = a.Rel
	}
	return rels
}
