package planner

import (
	"cqa/internal/db"
	"cqa/internal/graphx"
	"cqa/internal/matching"
)

// This file holds the polynomial-time deciders for the cyclic pattern
// classes. Both run directly on the interned snapshot — int32 ids, hash
// probes, binary searches into posting lists — so a decision allocates
// only the adjacency / counter slices it needs and never touches the
// mutable database or the string dictionary.

// Certain answers CERTAINTY(q) on the interned snapshot with the plan's
// specialized decider. ok is false when the plan has none (ClassFO,
// ClassHard) and the caller must evaluate by other means. Relations the
// snapshot does not declare are treated as empty, matching the engine's
// convention everywhere else.
func (p *Plan) Certain(ix *db.Interned) (certain, ok bool) {
	switch p.Class {
	case ClassMatching:
		return p.certainMatching(ix), true
	case ClassReachability:
		return p.certainReachability(ix), true
	}
	return false, false
}

// certainMatching decides the mutual-negation pattern {P(u|v), ¬N(v|u)}.
//
// A repair falsifies q iff every chosen P-fact P(a,b) has N(b,a) chosen
// too. The N-block of b can serve only one a, so a falsifying repair is
// exactly a system of distinct representatives: an injective a ↦ b_a over
// the P-block keys with P(a,b_a) ∈ db and N(b_a,a) ∈ db. Such a system
// exists iff the mutual graph {(a,b) : P(a,b) ∈ db ∧ N(b,a) ∈ db} has a
// matching saturating every P-block key; CERTAINTY(q) is its negation.
// O(E·√V) via Hopcroft–Karp.
func (p *Plan) certainMatching(ix *db.Interned) bool {
	pr := ix.Relation(p.pos)
	if pr == nil || pr.Rows() == 0 {
		// The unique repair of an empty P falsifies the positive atom.
		return false
	}
	nr := ix.Relation(p.negs[0])
	left := pr.Posting(0)  // P-block keys
	right := pr.Posting(1) // superset of the mutual partners
	adj := make([][]int32, len(left))
	if nr != nil && nr.Rows() > 0 {
		var probe [2]int32
		for i := 0; i < pr.Rows(); i++ {
			row := pr.Row(i)
			probe[0], probe[1] = row[1], row[0]
			if nr.Has(probe[:]) {
				// Interned rows are distinct facts, so (a, b) pairs — and
				// hence edges — are distinct without any dedup set.
				l := idIndex(left, row[0])
				adj[l] = append(adj[l], idIndex(right, row[1]))
			}
		}
	}
	size := matching.HopcroftKarpIDs(len(left), len(right), adj)
	return size < len(left)
}

// certainReachability decides the all-key edge pattern
// {E(x,y), ¬B(k|v), ¬C(k'|v')}.
//
// E is all-key, so every E-fact is in every repair. A repair falsifies q
// iff every E-edge (a,b) is "covered": the B-block keyed by the edge's
// B-key endpoint chose the fact matching the edge, or the C-block
// likewise. A block's single choice covers at most one edge, so a
// falsifying repair is an assignment of each edge to one of its ≤ 2
// eligible blocks (eligible = the covering fact exists in db) with block
// capacity one — a degree-one orientation of the multigraph whose
// vertices are blocks, whose two-eligible edges connect them, and whose
// one-eligible edges are self-loops. Such an orientation exists iff
// every connected component has at most as many edges as vertices (every
// component of a pseudoforest orients; a component with |E| > |V| cannot).
// An edge with no eligible block survives every repair, so q is certain
// immediately. Near-linear time via union-find with per-root edge
// counters.
func (p *Plan) certainReachability(ix *db.Interned) bool {
	er := ix.Relation(p.pos)
	if er == nil || er.Rows() == 0 {
		return false
	}
	br := ix.Relation(p.negs[0])
	cr := ix.Relation(p.negs[1])
	var bKeys, cKeys []int32
	if br != nil {
		bKeys = br.Posting(0)
	}
	if cr != nil {
		cKeys = cr.Posting(0)
	}
	nB := int32(len(bKeys))
	n := int(nB) + len(cKeys)
	uf := graphx.NewIntUnionFind(n)
	edges := make([]int32, n) // per-root edge count, valid at roots
	var probe [2]int32
	for i := 0; i < er.Rows(); i++ {
		row := er.Row(i)
		okB, vB := false, int32(0)
		if br != nil {
			probe[0] = row[p.negKeyPos[0]]
			probe[1] = row[1-p.negKeyPos[0]]
			if br.Has(probe[:]) {
				okB = true
				vB = idIndex(bKeys, probe[0])
			}
		}
		okC, vC := false, int32(0)
		if cr != nil {
			probe[0] = row[p.negKeyPos[1]]
			probe[1] = row[1-p.negKeyPos[1]]
			if cr.Has(probe[:]) {
				okC = true
				vC = nB + idIndex(cKeys, probe[0])
			}
		}
		switch {
		case !okB && !okC:
			// Uncoverable edge: no repair falsifies q.
			return true
		case okB && okC:
			rB, rC := uf.Find(vB), uf.Find(vC)
			if rB != rC {
				if uf.Union(rB, rC) == rB {
					edges[rB] += edges[rC]
				} else {
					edges[rC] += edges[rB]
				}
			}
			edges[uf.Find(vB)]++
		case okB:
			edges[uf.Find(vB)]++
		default:
			edges[uf.Find(vC)]++
		}
	}
	for v := int32(0); v < int32(n); v++ {
		// Once a component has more edges than vertices it keeps the
		// excess through every later union, so checking roots at the end
		// is exact.
		if uf.Find(v) == v && edges[v] > uf.Size(v) {
			return true
		}
	}
	return false
}

// idIndex returns the position of id in the sorted posting list p. The
// caller guarantees membership (ids probed here come from facts of the
// same relation), so no found flag is needed.
func idIndex(p []int32, id int32) int32 {
	lo, hi := int32(0), int32(len(p))
	for lo < hi {
		mid := (lo + hi) / 2
		if p[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
