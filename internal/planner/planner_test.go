package planner_test

import (
	"strings"
	"testing"

	"cqa/internal/parse"
	"cqa/internal/planner"
	"cqa/internal/schema"
)

func mustQuery(t *testing.T, s string) schema.Query {
	t.Helper()
	q, err := parse.Query(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return q
}

func TestRecognizeClasses(t *testing.T) {
	cases := []struct {
		query string
		want  planner.Class
	}{
		// q1 up to renaming: mutual negation.
		{"R(x | y), !S(y | x)", planner.ClassMatching},
		{"Emp(a | b), !Audit(b | a)", planner.ClassMatching},
		{"!S(y | x), R(x | y)", planner.ClassMatching}, // literal order is irrelevant
		// q2 up to renaming and per-atom orientation.
		{"E(x, y), !B(x | y), !C(y | x)", planner.ClassReachability},
		{"E(x, y), !B(y | x), !C(x | y)", planner.ClassReachability},
		{"!C(y | x), E(x, y), !B(y | x)", planner.ClassReachability},
		// Near misses must fall through to the hard class.
		{"R(x | y), S(y | x)", planner.ClassHard},        // no negation
		{"R(x | y), !S(x | y)", planner.ClassHard},       // not mutual
		{"R(x | y), !S('c' | x)", planner.ClassHard},     // constant key
		{"R(x, y), !S(y | x)", planner.ClassHard},        // positive atom all-key
		{"E(x | y), !B(x | y), !C(y | x)", planner.ClassHard}, // edge atom not all-key
		{"E(x, y), !B(x | y), !C(x | z), P(x | z)", planner.ClassHard},
	}
	for _, c := range cases {
		p := planner.New(mustQuery(t, c.query), false)
		if p.Class != c.want {
			t.Errorf("%s: class = %s, want %s", c.query, p.Class, c.want)
		}
		switch p.Class {
		case planner.ClassMatching:
			if p.Strategy != planner.StrategyMatching {
				t.Errorf("%s: strategy = %q", c.query, p.Strategy)
			}
		case planner.ClassReachability:
			if p.Strategy != planner.StrategyReachability {
				t.Errorf("%s: strategy = %q", c.query, p.Strategy)
			}
		case planner.ClassHard:
			if p.Strategy != planner.StrategyNaive {
				t.Errorf("%s: strategy = %q", c.query, p.Strategy)
			}
		}
		if p.Reason == "" {
			t.Errorf("%s: empty reason", c.query)
		}
	}
}

func TestNewFOPlan(t *testing.T) {
	// The FO flag wins even for a pattern shape: the compiled rewriting
	// upstream serves FO queries, the planner stands aside.
	p := planner.New(mustQuery(t, "R(x | y), !S(y | x)"), true)
	if p.Class != planner.ClassFO {
		t.Fatalf("class = %s, want %s", p.Class, planner.ClassFO)
	}
	if p.Strategy != "" {
		t.Fatalf("FO plan strategy = %q, want empty", p.Strategy)
	}
	if _, ok := p.Certain(nil); ok {
		t.Fatal("FO plan must not claim a decider")
	}
}

func TestDecideRecordsStats(t *testing.T) {
	q := mustQuery(t, "R(x | y), !S(y | x)")
	p := planner.New(q, false)
	d := parse.MustDatabase("R(a | 1)\nR(a | 2)\nR(b | 1)\nS(z | z)")
	dec := p.Decide(d.Interned())
	if dec.Strategy != planner.StrategyMatching {
		t.Fatalf("strategy = %q", dec.Strategy)
	}
	if len(dec.Stats) != 2 || dec.Stats[0].Rel != "R" || dec.Stats[1].Rel != "S" {
		t.Fatalf("stats = %+v", dec.Stats)
	}
	r := dec.Stats[0]
	if r.Facts != 3 || r.Blocks != 2 || r.MaxBlock != 2 {
		t.Fatalf("R stats = %+v", r)
	}
	if !strings.Contains(dec.Reason, "Hopcroft") {
		t.Fatalf("reason = %q", dec.Reason)
	}

	// A relation the snapshot does not declare appears with zero stats.
	empty := parse.MustDatabase("R(a | 1)")
	dec = p.Decide(empty.Interned())
	if dec.Stats[1].Rel != "S" || dec.Stats[1].Facts != 0 {
		t.Fatalf("undeclared S stats = %+v", dec.Stats[1])
	}
}
