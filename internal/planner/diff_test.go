package planner_test

import (
	"math/rand"
	"sync"
	"testing"

	"cqa/internal/core"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/planner"
)

// patternQueries is the pool of decider-served shapes the differential
// test draws from: the mutual-negation pattern under renamings and both
// literal orders, and the all-key edge pattern in all four orientation
// combinations of its negated atoms. The mixed orientations are the
// paper's cyclic q2 (and its mirror); the same-orientation variants have
// acyclic attack graphs — core serves them via the FO rewriting and the
// planner never sees them in production — but the decider must still be
// sound on them, so they stay in the soundness pool.
var patternQueries = []struct {
	text  string
	notFO bool
}{
	{"R(x | y), !S(y | x)", true},
	{"!Audit(b | a), Emp(a | b)", true},
	{"E(x, y), !B(x | y), !C(y | x)", true},
	{"E(x, y), !B(y | x), !C(x | y)", true},
	{"E(x, y), !B(x | y), !C(x | y)", false},
	{"E(x, y), !B(y | x), !C(y | x)", false},
}

// TestDifferentialDecidersVsNaive checks the matching and reachability
// deciders against brute-force repair enumeration on ≥ 500 random small
// cyclic instances (≤ 2 facts per block, so the oracle enumerates at
// most 2^blocks repairs). Every query in the pool must be non-FO and
// planner-served — a pool entry silently falling back to naive would
// turn the test into naive-vs-naive.
func TestDifferentialDecidersVsNaive(t *testing.T) {
	const cases = 500

	rng := rand.New(rand.NewSource(20180611))
	dbOpts := gen.DBOptions{BlocksPerRelation: 3, MaxBlockSize: 2, DomainPerVariable: 3, ConstantBias: 0.7}

	for i := 0; i < cases; i++ {
		entry := patternQueries[i%len(patternQueries)]
		text := entry.text
		q := mustQuery(t, text)
		cls, err := core.Classify(q)
		if err != nil {
			t.Fatalf("classify %s: %v", text, err)
		}
		if gotFO := cls.Verdict == core.VerdictFO; gotFO == entry.notFO {
			t.Fatalf("%s: verdict = %s — pool expectation wrong", text, cls.Verdict)
		}
		plan := planner.New(q, false)
		if plan.Class != planner.ClassMatching && plan.Class != planner.ClassReachability {
			t.Fatalf("%s: class = %s — pool must exercise the deciders", text, plan.Class)
		}

		d := gen.Database(rng, q, dbOpts)
		want := naive.IsCertain(q, d)
		got, ok := plan.Certain(d.Interned())
		if !ok {
			t.Fatalf("%s: decider refused", text)
		}
		if got != want {
			t.Fatalf("case %d: decider = %v, naive oracle = %v\nquery: %s\ndb:\n%s", i, got, want, text, d)
		}
	}
}

// TestDecidersOnEdgeInstances pins the hand-checkable boundary cases.
func TestDecidersOnEdgeInstances(t *testing.T) {
	matching := planner.New(mustQuery(t, "R(x | y), !S(y | x)"), false)
	reach := planner.New(mustQuery(t, "E(x, y), !B(x | y), !C(y | x)"), false)

	cases := []struct {
		name  string
		plan  *planner.Plan
		facts string
		want  bool
	}{
		// Empty positive relation: the unique repair falsifies q.
		{"matching empty R", matching, "S(a | b)", false},
		// No mutual facts: no falsifying repair exists.
		{"matching no mutual", matching, "R(a | 1)\nR(a | 2)\nS(z | z)", true},
		// Example 1.1: a perfect mutual matching exists (not certain).
		{"matching saturated", matching, "R(a | 1)\nR(b | 2)\nS(1 | a)\nS(2 | b)", false},
		// Two R-blocks compete for the single S-block of b: certain.
		{"matching contention", matching, "R(a | b)\nR(c | b)\nS(b | a)\nS(b | c)", true},
		// Empty edge relation: nothing to satisfy the positive atom.
		{"reach empty E", reach, "B(a | b)", false},
		// Uncoverable edge: neither B(a|b) nor C(b|a) exists.
		{"reach uncoverable", reach, "E(a, b)\nB(x | y)", true},
		// One edge, coverable one way: the repair keeping B(a|b) falsifies.
		{"reach single cover", reach, "E(a, b)\nB(a | b)", false},
		// Two self-loops on the same B-block (B(a|·) must cover both
		// E(a,b) and E(a,c) but can only choose one value): certain.
		{"reach overloaded block", reach, "E(a, b)\nE(a, c)\nB(a | b)\nB(a | c)", true},
		// Same two edges, but C covers one endpoint: both coverable.
		{"reach relieved block", reach, "E(a, b)\nE(a, c)\nB(a | b)\nB(a | c)\nC(c | a)", false},
	}
	for _, c := range cases {
		d := parse.MustDatabase(c.facts)
		got, ok := c.plan.Certain(d.Interned())
		if !ok {
			t.Fatalf("%s: decider refused", c.name)
		}
		if got != c.want {
			t.Errorf("%s: certain = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSharedDecisionRace shares one prepared plan — and therefore one
// cached planner decision — across 32 goroutines issuing concurrent
// Certain and Decision calls against the same snapshot. Run under
// `go test -race` (make race) this is the data-race check the planner's
// immutability contract promises; the answers must also all agree with
// the naive oracle.
func TestSharedDecisionRace(t *testing.T) {
	q := mustQuery(t, "R(x | y), !S(y | x)")
	p, err := core.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	d := gen.Database(rng, q, gen.DBOptions{BlocksPerRelation: 4, MaxBlockSize: 2, DomainPerVariable: 3, ConstantBias: 0.7})
	want := naive.IsCertain(q, d)

	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := p.Certain(d); got != want {
					errs <- "Certain disagrees with oracle"
					return
				}
				dec := p.Decision(d)
				if dec.Strategy != planner.StrategyMatching {
					errs <- "Decision strategy = " + dec.Strategy
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
