package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" {
		t.Fatal("nil trace ID")
	}
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil trace should return nil span")
	}
	sp.SetAttr("k", "v")
	sp.Fail(errors.New("boom"))
	sp.End()
	tr.Finish()

	var tc *Tracer
	if got := tc.Start("op", ""); got != nil {
		t.Fatal("nil tracer should start nil trace")
	}
	if got := tc.Snapshot(Query{}); got != nil {
		t.Fatal("nil tracer snapshot should be nil")
	}
}

func TestSamplingZeroDropsRoots(t *testing.T) {
	tc := NewTracer(TracerOptions{Sample: -1})
	if tc.Sample() != 0 {
		t.Fatalf("sample = %v, want 0", tc.Sample())
	}
	for i := 0; i < 100; i++ {
		if tr := tc.Start("op", ""); tr != nil {
			t.Fatal("sampling 0 must drop fresh roots")
		}
	}
	_, dropped, _ := tc.Stats()
	if dropped != 100 {
		t.Fatalf("dropped = %d, want 100", dropped)
	}
	// Joined traces are recorded regardless of the sampling rate.
	tr := tc.Start("op", "remote-1")
	if tr == nil {
		t.Fatal("joined trace must be recorded at sampling 0")
	}
	if tr.ID() != "remote-1" {
		t.Fatalf("joined trace ID = %q", tr.ID())
	}
	tr.Finish()
	views := tc.Snapshot(Query{ID: "remote-1"})
	if len(views) != 1 {
		t.Fatalf("snapshot: got %d traces, want 1", len(views))
	}
}

func TestSpansRecorded(t *testing.T) {
	tc := NewTracer(TracerOptions{})
	tr := tc.Start("POST /v1/certain", "")
	if tr == nil {
		t.Fatal("full sampling must record")
	}
	sp := tr.StartSpan("parse")
	sp.SetAttr("query", "R(x | y)").SetAttr("atoms", "1")
	time.Sleep(time.Millisecond)
	sp.End()

	sp2 := tr.StartSpan("rpc")
	sp2.Fail(errors.New("connection refused"))
	sp2.End()
	tr.Finish()

	views := tc.Snapshot(Query{ID: tr.ID()})
	if len(views) != 1 {
		t.Fatalf("got %d traces, want 1", len(views))
	}
	v := views[0]
	if v.Name != "POST /v1/certain" {
		t.Fatalf("name = %q", v.Name)
	}
	if len(v.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(v.Spans))
	}
	parse := v.Spans[0]
	if parse.Name != "parse" || parse.DurNanos < int64(time.Millisecond) {
		t.Fatalf("parse span: %+v", parse)
	}
	if len(parse.Attrs) != 2 || parse.Attrs[0].Key != "query" || parse.Attrs[1].Value != "1" {
		t.Fatalf("parse attrs: %+v", parse.Attrs)
	}
	if v.Spans[1].Error != "connection refused" {
		t.Fatalf("rpc span error = %q", v.Spans[1].Error)
	}
	if v.DurNanos < parse.DurNanos {
		t.Fatalf("trace dur %d < span dur %d", v.DurNanos, parse.DurNanos)
	}
}

func TestFinishIdempotentAndLateEnd(t *testing.T) {
	tc := NewTracer(TracerOptions{})
	tr := tc.Start("op", "")
	sp := tr.StartSpan("late")
	tr.Finish()
	tr.Finish() // second Finish must not re-publish
	sp.End()    // End after Finish is a silent no-op

	sampled, _, _ := tc.Stats()
	if sampled != 1 {
		t.Fatalf("sampled = %d, want 1", sampled)
	}
	views := tc.Snapshot(Query{ID: tr.ID()})
	if len(views) != 1 || len(views[0].Spans) != 0 {
		t.Fatalf("late span must be dropped: %+v", views)
	}
}

func TestRingOverwrite(t *testing.T) {
	tc := NewTracer(TracerOptions{Buffer: 4})
	for i := 0; i < 10; i++ {
		tr := tc.Start("op", fmt.Sprintf("id-%d", i))
		tr.Finish()
	}
	views := tc.Snapshot(Query{Limit: 100})
	if len(views) != 4 {
		t.Fatalf("ring of 4: got %d traces", len(views))
	}
	for _, v := range views {
		if v.ID < "id-6" {
			t.Fatalf("old trace survived overwrite: %s", v.ID)
		}
	}
}

func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	tc := NewTracer(TracerOptions{
		SlowQuery: time.Microsecond,
		Logf: func(format string, v ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, v...))
			mu.Unlock()
		},
	})
	tr := tc.Start("slowop", "")
	time.Sleep(time.Millisecond)
	tr.Finish()

	fast := NewTracer(TracerOptions{}) // no threshold: never logs
	ft := fast.Start("fastop", "")
	ft.Finish()

	_, _, slow := tc.Stats()
	if slow != 1 {
		t.Fatalf("slow = %d, want 1", slow)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 || !strings.Contains(lines[0], "slowop") || !strings.Contains(lines[0], tr.ID()) {
		t.Fatalf("slow log lines: %q", lines)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tc := NewTracer(TracerOptions{})
	tr := tc.Start("op", "")
	ctx := With(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatal("context did not carry trace")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatal("empty context must yield nil")
	}
	if ctx2 := With(context.Background(), nil); FromContext(ctx2) != nil {
		t.Fatal("nil trace must not be stored")
	}
}

func TestMintUnique(t *testing.T) {
	tc := NewTracer(TracerOptions{})
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		tr := tc.Start("op", "")
		if seen[tr.ID()] {
			t.Fatalf("duplicate trace ID %s", tr.ID())
		}
		seen[tr.ID()] = true
	}
}

func TestSnapshotFilters(t *testing.T) {
	tc := NewTracer(TracerOptions{})
	slow := tc.Start("slow", "")
	time.Sleep(2 * time.Millisecond)
	slow.Finish()
	fast := tc.Start("fast", "")
	fast.Finish()

	got := tc.Snapshot(Query{MinDur: time.Millisecond})
	if len(got) != 1 || got[0].ID != slow.ID() {
		t.Fatalf("MinDur filter: %+v", got)
	}
	got = tc.Snapshot(Query{Limit: 1})
	if len(got) != 1 {
		t.Fatalf("Limit: got %d", len(got))
	}
	// Newest first.
	if got[0].ID != fast.ID() {
		t.Fatalf("newest first: got %s", got[0].ID)
	}
}

// TestConcurrent exercises recording, span appends, and snapshots from
// 32 goroutines at once; run under -race.
func TestConcurrent(t *testing.T) {
	tc := NewTracer(TracerOptions{Buffer: 16, SlowQuery: time.Nanosecond, Logf: func(string, ...any) {}})
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr := tc.Start("op", "")
				var inner sync.WaitGroup
				for s := 0; s < 3; s++ {
					inner.Add(1)
					go func(s int) {
						defer inner.Done()
						sp := tr.StartSpan(fmt.Sprintf("s%d", s))
						sp.SetAttr("g", fmt.Sprint(g))
						sp.End()
					}(s)
				}
				inner.Wait()
				tr.Finish()
				if i%10 == 0 {
					tc.Snapshot(Query{})
				}
			}
		}(g)
	}
	wg.Wait()
	sampled, _, _ := tc.Stats()
	if sampled != 32*50 {
		t.Fatalf("sampled = %d, want %d", sampled, 32*50)
	}
}
