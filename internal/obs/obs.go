// Package obs is the zero-dependency observability layer of the serving
// tier: per-request traces with named spans, propagated across processes
// via the X-CQA-Trace header, recorded in a lock-cheap ring buffer and
// served as JSON at GET /debug/traces, with an optional slow-query log.
//
// Design constraints, in order:
//
//   - Disabled must be free. A Tracer with sampling 0 returns nil traces,
//     and every method on a nil *Trace or nil *Span is a no-op, so
//     instrumented code needs no branches and an untraced request costs
//     one atomic load. Evaluation hot loops (internal/fo) are never
//     instrumented per candidate — spans bracket request stages only.
//
//   - Joins beat samples. A request arriving with an X-CQA-Trace header
//     is always recorded regardless of the sampling rate: the router
//     sampled it, so every shard it fans out to must contribute spans
//     under the same ID, or the trace is useless.
//
//   - Readers never block writers. Finished traces go into a fixed ring
//     of atomic pointers; recording is one atomic add plus one pointer
//     store, and /debug/traces snapshots the ring without any lock.
//
// See docs/OBSERVABILITY.md for the trace model and the join semantics
// across the sharded topology.
package obs

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying the trace ID across tiers:
// minted at the edge (router or first cqad), echoed on every response,
// and forwarded on every fan-out request.
const TraceHeader = "X-CQA-Trace"

// DefaultBuffer is the ring capacity when TracerOptions.Buffer ≤ 0.
const DefaultBuffer = 256

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Sample is the probability in [0, 1] that a fresh root trace is
	// recorded. 0 disables tracing (joined traces are still recorded);
	// values ≥ 1 record everything. NewTracer treats the zero value as
	// "record everything" — pass an explicit negative to disable, or use
	// SetSample(0) at runtime.
	Sample float64
	// Buffer is the ring capacity in finished traces; ≤ 0 selects
	// DefaultBuffer.
	Buffer int
	// SlowQuery is the duration beyond which a finished trace is logged
	// through Logf; 0 disables the slow-query log.
	SlowQuery time.Duration
	// Logf receives slow-query lines; nil discards them.
	Logf func(format string, v ...any)
}

// Tracer mints, records, and serves traces. Safe for concurrent use.
type Tracer struct {
	sample atomic.Uint64 // math.Float64bits of the sampling probability
	slow   atomic.Int64  // slow-query threshold in nanoseconds; 0 = off
	logf   func(format string, v ...any)

	ring   []atomic.Pointer[Trace]
	cursor atomic.Uint64

	seq     atomic.Uint64
	prefix  string
	sampled atomic.Uint64
	dropped atomic.Uint64
	slowN   atomic.Uint64
}

// NewTracer builds a tracer. The zero Sample records everything (the
// operational default); pass Sample < 0 to start disabled.
func NewTracer(opt TracerOptions) *Tracer {
	if opt.Buffer <= 0 {
		opt.Buffer = DefaultBuffer
	}
	sample := opt.Sample
	if sample == 0 {
		sample = 1
	} else if sample < 0 {
		sample = 0
	}
	t := &Tracer{
		ring: make([]atomic.Pointer[Trace], opt.Buffer),
		logf: opt.Logf,
	}
	t.sample.Store(math.Float64bits(sample))
	t.slow.Store(int64(opt.SlowQuery))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], rand.Uint64())
	t.prefix = fmt.Sprintf("%08x", binary.LittleEndian.Uint32(b[:4]))
	return t
}

// SetSample replaces the sampling probability at runtime (clamped to
// [0, 1]). Joined traces are unaffected.
func (t *Tracer) SetSample(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	t.sample.Store(math.Float64bits(p))
}

// Sample returns the current sampling probability.
func (t *Tracer) Sample() float64 { return math.Float64frombits(t.sample.Load()) }

// Stats reports lifetime counters: traces recorded, root traces dropped
// by sampling, and traces that crossed the slow-query threshold.
func (t *Tracer) Stats() (sampled, dropped, slow uint64) {
	return t.sampled.Load(), t.dropped.Load(), t.slowN.Load()
}

// mint returns a fresh trace ID: a per-process random prefix plus a
// sequence number, unique within and readable across a topology.
func (t *Tracer) mint() string {
	return fmt.Sprintf("%s-%06x", t.prefix, t.seq.Add(1))
}

// Start begins a trace for one request. name labels the operation
// (typically METHOD /path). A non-empty joinID — the incoming
// X-CQA-Trace header — always records under that ID; otherwise the
// sampling decision applies and Start may return nil. All *Trace and
// *Span methods are nil-safe, so callers never branch.
func (t *Tracer) Start(name, joinID string) *Trace {
	if t == nil {
		return nil
	}
	id := joinID
	if id == "" {
		p := math.Float64frombits(t.sample.Load())
		if p <= 0 || (p < 1 && rand.Float64() >= p) {
			t.dropped.Add(1)
			return nil
		}
		id = t.mint()
	}
	return &Trace{t: t, id: id, name: name, begin: time.Now()}
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// spanRec is one finished span as stored on its trace.
type spanRec struct {
	name   string
	offset time.Duration // from trace begin to span start
	dur    time.Duration
	attrs  []Attr
	err    string
}

// Trace is one request's record: an ID, a begin time, and finished
// spans in end order. A Trace is built by at most a handful of
// goroutines (the request handler and the workers it forks); span
// appends are serialized by a mutex that is uncontended in practice.
type Trace struct {
	t     *Tracer
	id    string
	name  string
	begin time.Time

	mu    sync.Mutex
	spans []spanRec
	dur   time.Duration
	done  bool
}

// ID returns the trace ID ("" on nil).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// StartSpan opens a named span. Nil-safe: on a nil trace it returns a
// nil span whose methods are no-ops.
func (tr *Trace) StartSpan(name string) *Span {
	if tr == nil {
		return nil
	}
	return &Span{tr: tr, name: name, start: time.Now()}
}

// Finish seals the trace and publishes it to the tracer's ring. Spans
// still open are dropped (End after Finish is a silent no-op).
// Idempotent and nil-safe.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	tr.dur = time.Since(tr.begin)
	dur := tr.dur
	tr.mu.Unlock()

	t := tr.t
	t.sampled.Add(1)
	i := t.cursor.Add(1) - 1
	t.ring[i%uint64(len(t.ring))].Store(tr)
	if slow := time.Duration(t.slow.Load()); slow > 0 && dur >= slow {
		t.slowN.Add(1)
		if t.logf != nil {
			t.logf("slow query: trace=%s op=%s dur=%s spans=%d", tr.id, tr.name, dur.Round(time.Microsecond), len(tr.spans))
		}
	}
}

// Span is one in-flight stage of a trace. Created by StartSpan, sealed
// by End. Methods are nil-safe.
type Span struct {
	tr    *Trace
	name  string
	start time.Time
	attrs []Attr
	err   string
}

// SetAttr annotates the span; returns the span for chaining.
func (s *Span) SetAttr(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// Fail records an error on the span (kept alongside its timing).
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.err = err.Error()
}

// End seals the span onto its trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	tr := s.tr
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return
	}
	tr.spans = append(tr.spans, spanRec{
		name:   s.name,
		offset: s.start.Sub(tr.begin),
		dur:    dur,
		attrs:  s.attrs,
		err:    s.err,
	})
}

// TraceView is the JSON form of one finished trace.
type TraceView struct {
	ID       string     `json:"id"`
	Name     string     `json:"name"`
	Start    time.Time  `json:"start"`
	DurNanos int64      `json:"durNanos"`
	Spans    []SpanView `json:"spans"`
}

// SpanView is the JSON form of one span.
type SpanView struct {
	Name        string `json:"name"`
	OffsetNanos int64  `json:"offsetNanos"`
	DurNanos    int64  `json:"durNanos"`
	Attrs       []Attr `json:"attrs,omitempty"`
	Error       string `json:"error,omitempty"`
}

// view renders a finished trace.
func (tr *Trace) view() TraceView {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	v := TraceView{ID: tr.id, Name: tr.name, Start: tr.begin, DurNanos: int64(tr.dur), Spans: make([]SpanView, len(tr.spans))}
	for i, s := range tr.spans {
		v.Spans[i] = SpanView{Name: s.name, OffsetNanos: int64(s.offset), DurNanos: int64(s.dur), Attrs: s.attrs, Error: s.err}
	}
	return v
}

// Query filters a Snapshot.
type Query struct {
	// ID returns only traces with this exact ID.
	ID string
	// MinDur drops traces shorter than this.
	MinDur time.Duration
	// Limit bounds the result count; ≤ 0 selects 64.
	Limit int
}

// Snapshot returns finished traces, newest first, filtered by q. The
// snapshot is taken without blocking recorders; a trace finishing
// concurrently may or may not appear.
func (t *Tracer) Snapshot(q Query) []TraceView {
	if t == nil {
		return nil
	}
	if q.Limit <= 0 {
		q.Limit = 64
	}
	var out []TraceView
	for i := range t.ring {
		tr := t.ring[i].Load()
		if tr == nil {
			continue
		}
		v := tr.view()
		if q.ID != "" && v.ID != q.ID {
			continue
		}
		if q.MinDur > 0 && time.Duration(v.DurNanos) < q.MinDur {
			continue
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// ctxKey keys the trace in a context.
type ctxKey struct{}

// With returns ctx carrying tr; a nil trace returns ctx unchanged.
func With(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
