package parse_test

import (
	"strings"
	"testing"

	"cqa/internal/db"
	"cqa/internal/parse"
)

func TestDatabaseCSV(t *testing.T) {
	d := db.New()
	src := "ann,mons\nbob, ghent\nann,liege\n"
	if err := parse.DatabaseCSV(d, "Lives", 1, strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 {
		t.Fatalf("size = %d", d.Size())
	}
	if !d.Has(db.F("Lives", "bob", "ghent")) {
		t.Error("trimmed field mishandled")
	}
	if d.IsConsistent() {
		t.Error("ann has two residences; should be inconsistent")
	}
	r := d.Relation("Lives")
	if r.Arity != 2 || r.Key != 1 {
		t.Errorf("signature = [%d, %d]", r.Arity, r.Key)
	}
}

func TestDatabaseCSVErrors(t *testing.T) {
	d := db.New()
	if err := parse.DatabaseCSV(d, "R", 1, strings.NewReader("a,b\nc\n")); err == nil {
		t.Error("ragged records should fail")
	}
	d2 := db.New()
	d2.MustDeclare("R", 3, 1)
	if err := parse.DatabaseCSV(d2, "R", 1, strings.NewReader("a,b\n")); err == nil {
		t.Error("signature clash should fail")
	}
	// Invalid key against first record's arity.
	d3 := db.New()
	if err := parse.DatabaseCSV(d3, "R", 5, strings.NewReader("a,b\n")); err == nil {
		t.Error("key larger than arity should fail")
	}
	// Empty input declares nothing and succeeds.
	d4 := db.New()
	if err := parse.DatabaseCSV(d4, "R", 1, strings.NewReader("")); err != nil {
		t.Errorf("empty input: %v", err)
	}
	if d4.Relation("R") != nil {
		t.Error("empty input should not declare the relation")
	}
}
