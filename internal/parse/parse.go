// Package parse implements the concrete text syntax used by the command
// line tools, examples, and tests.
//
// Query syntax (one query per string):
//
//	R(x | y), !S(y | x)
//
// Literals are separated by commas (an optional `&` is also accepted).
// `!` or `not` negates an atom. Inside an atom, the terms before the `|`
// are the primary-key positions; an atom without `|` is all-key.
// Identifiers starting with a lowercase letter are variables; single-quoted
// strings ('c') and numbers are constants.
//
// Database syntax (one fact per line):
//
//	R(a | b)
//	S(b | a)    # trailing comments are allowed
//
// All fact arguments are constants and need no quoting. Signatures are
// inferred from the first fact of each relation and must stay consistent.
package parse

import (
	"fmt"
	"strings"
	"unicode"

	"cqa/internal/db"
	"cqa/internal/schema"
)

type lexer struct {
	src []rune
	pos int
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(l.src[l.pos]) {
		l.pos++
	}
}

func (l *lexer) eof() bool {
	l.skipSpace()
	return l.pos >= len(l.src)
}

func (l *lexer) peek() rune {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) consume(r rune) bool {
	if l.peek() == r {
		l.pos++
		return true
	}
	return false
}

func (l *lexer) expect(r rune) error {
	if !l.consume(r) {
		return fmt.Errorf("parse: expected %q at offset %d", r, l.pos)
	}
	return nil
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '·' || r == '⊥'
}

// ident reads an identifier or number; returns "" when none is present.
func (l *lexer) ident() string {
	l.skipSpace()
	start := l.pos
	for l.pos < len(l.src) && isIdentRune(l.src[l.pos]) {
		l.pos++
	}
	return string(l.src[start:l.pos])
}

// quoted reads a single-quoted constant after the opening quote has been
// consumed.
func (l *lexer) quoted() (string, error) {
	start := l.pos
	for l.pos < len(l.src) {
		if l.src[l.pos] == '\'' {
			s := string(l.src[start:l.pos])
			l.pos++
			return s, nil
		}
		l.pos++
	}
	return "", fmt.Errorf("parse: unterminated quoted constant at offset %d", start)
}

func (l *lexer) term() (schema.Term, error) {
	if l.consume('\'') {
		v, err := l.quoted()
		if err != nil {
			return schema.Term{}, err
		}
		return schema.Const(v), nil
	}
	id := l.ident()
	if id == "" {
		return schema.Term{}, fmt.Errorf("parse: expected term at offset %d", l.pos)
	}
	first := []rune(id)[0]
	if unicode.IsLower(first) {
		return schema.Var(id), nil
	}
	// Digits and other non-lowercase identifiers are constants.
	return schema.Const(id), nil
}

// atom parses Rel(t1, ..., tk | tk+1, ..., tn).
func (l *lexer) atom() (schema.Atom, error) {
	rel := l.ident()
	if rel == "" {
		return schema.Atom{}, fmt.Errorf("parse: expected relation name at offset %d", l.pos)
	}
	first := []rune(rel)[0]
	if !unicode.IsUpper(first) {
		return schema.Atom{}, fmt.Errorf("parse: relation name %q must start with an uppercase letter", rel)
	}
	if err := l.expect('('); err != nil {
		return schema.Atom{}, err
	}
	var terms []schema.Term
	key := -1
	for {
		t, err := l.term()
		if err != nil {
			return schema.Atom{}, err
		}
		terms = append(terms, t)
		if l.consume(',') {
			continue
		}
		if l.consume('|') {
			if key != -1 {
				return schema.Atom{}, fmt.Errorf("parse: atom %s has two '|' separators", rel)
			}
			key = len(terms)
			continue
		}
		break
	}
	if err := l.expect(')'); err != nil {
		return schema.Atom{}, err
	}
	if key == -1 {
		key = len(terms) // all-key
	}
	return schema.Atom{Rel: rel, Key: key, Terms: terms}, nil
}

// Query parses a query string and validates it as sjfBCQ¬.
func Query(src string) (schema.Query, error) {
	l := &lexer{src: []rune(src)}
	var lits []schema.Literal
	for {
		neg := false
		if l.consume('!') {
			neg = true
		} else {
			// Allow the keyword form "not R(...)".
			save := l.pos
			if id := l.ident(); id == "not" {
				neg = true
			} else {
				l.pos = save
			}
		}
		a, err := l.atom()
		if err != nil {
			return schema.Query{}, err
		}
		lits = append(lits, schema.Literal{Neg: neg, Atom: a})
		if l.consume(',') || l.consume('&') {
			continue
		}
		break
	}
	if !l.eof() {
		return schema.Query{}, fmt.Errorf("parse: trailing input at offset %d", l.pos)
	}
	q := schema.Query{Lits: lits}
	if err := q.Validate(); err != nil {
		return schema.Query{}, err
	}
	return q, nil
}

// MustQuery parses a query and panics on error; for tests and examples.
func MustQuery(src string) schema.Query {
	q, err := Query(src)
	if err != nil {
		panic(err)
	}
	return q
}

// Database parses a multi-line database listing. Relation signatures are
// inferred from the facts; every argument is treated as a constant.
func Database(src string) (*db.Database, error) {
	d := db.New()
	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		l := &lexer{src: []rune(line)}
		a, err := l.atom()
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if !l.eof() {
			return nil, fmt.Errorf("line %d: trailing input after fact", lineNo+1)
		}
		args := make([]string, len(a.Terms))
		for i, t := range a.Terms {
			args[i] = t.Name // variables in fact position are read as constants
		}
		if err := d.DeclareRelation(a.Rel, len(args), a.Key); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		if err := d.Insert(db.Fact{Rel: a.Rel, Args: args}); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	return d, nil
}

// MustDatabase parses a database and panics on error; for tests and
// examples.
func MustDatabase(src string) *db.Database {
	d, err := Database(src)
	if err != nil {
		panic(err)
	}
	return d
}

// DeclareQueryRelations declares in d every relation that q mentions, so
// that empty relations are still known to the evaluator. Signatures must
// agree with any facts already inserted.
func DeclareQueryRelations(d *db.Database, q schema.Query) error {
	for _, a := range q.Atoms() {
		if err := d.DeclareRelation(a.Rel, a.Arity(), a.Key); err != nil {
			return err
		}
	}
	return nil
}
