package parse

import (
	"fmt"
	"sort"
	"strings"

	"cqa/internal/db"
)

// Rendering the database syntax back out: the inverse of Database, used
// by the shard router to re-render a partitioned write batch per owner
// shard, and by the facts-export endpoint. FormatDatabase ∘ Database is
// the identity on database content (facts and signatures).

// formatConst renders one constant argument: bare when every rune is an
// identifier rune, single-quoted otherwise. Constants that cannot be
// quoted (embedded quote or newline — the syntax has no escapes) are
// rejected.
func formatConst(v string) (string, error) {
	if v != "" && !strings.ContainsFunc(v, func(r rune) bool { return !isIdentRune(r) }) {
		return v, nil
	}
	if strings.ContainsAny(v, "'\n\r") {
		return "", fmt.Errorf("parse: constant %q cannot be rendered in the database syntax", v)
	}
	return "'" + v + "'", nil
}

// FormatFact renders one fact as a database line, key positions before
// the bar: R(a, b | c). An all-key fact has no bar.
func FormatFact(f db.Fact, key int) (string, error) {
	var b strings.Builder
	b.WriteString(f.Rel)
	b.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			if i == key {
				b.WriteString(" | ")
			} else {
				b.WriteString(", ")
			}
		}
		c, err := formatConst(a)
		if err != nil {
			return "", err
		}
		b.WriteString(c)
	}
	b.WriteByte(')')
	return b.String(), nil
}

// FormatDatabase renders d as a multi-line database listing, relations
// sorted by name and facts in insertion order, that Database parses back
// to equal content. Relations without facts cannot be expressed in the
// syntax (signatures are inferred from facts) and are skipped; callers
// that must preserve empty relations ship the signature list separately.
func FormatDatabase(d *db.Database) (string, error) {
	names := d.RelationNames()
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		r := d.Relation(name)
		for _, f := range d.Facts(name) {
			line, err := FormatFact(f, r.Key)
			if err != nil {
				return "", err
			}
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}
