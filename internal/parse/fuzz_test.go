package parse_test

import (
	"math/rand"
	"testing"

	"cqa/internal/gen"
	"cqa/internal/parse"
)

// FuzzParseQuery checks that the query parser never panics and that
// accepted queries are valid and round-trip through String.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"R(x | y), !S(y | x)",
		"R(x, y)",
		"N('c' | y)",
		"R(x | 'a b'), not T(x)",
		"R(x",
		"!!R(x)",
		"R(x | y | z)",
		"R('unterminated",
		"R(x),R(x)",
		"⊥(x)",
		"R(x)&S(x)&!T(x)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := parse.Query(src)
		if err != nil {
			return
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted invalid query %q: %v", src, err)
		}
		// Round trip: the printed form must parse to the same string.
		again, err := parse.Query(q.String())
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", q, err)
		}
		if again.String() != q.String() {
			t.Fatalf("round trip changed %q to %q", q, again)
		}
	})
}

// FuzzDatabase checks that the database parser never panics and that
// accepted databases round-trip through String.
func FuzzDatabase(f *testing.F) {
	seeds := []string{
		"R(a | b)\nS(b | a)",
		"# comment only",
		"T(1, 2)\n\nT(3, 4)",
		"R(a | b)\nR(a, b)",
		"broken(",
		"R(a | b) trailing",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := parse.Database(src)
		if err != nil {
			return
		}
		again, err := parse.Database(d.String())
		if err != nil {
			t.Fatalf("round trip failed: %v\noriginal:\n%s", err, d)
		}
		if again.String() != d.String() {
			t.Fatalf("round trip changed\n%s\nto\n%s", d, again)
		}
	})
}

// Generated queries always round-trip through the parser — the printer
// and the parser agree on the concrete syntax.
func TestGeneratedQueriesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	opts := gen.DefaultQueryOptions()
	for i := 0; i < 200; i++ {
		q := gen.Query(rng, opts)
		back, err := parse.Query(q.String())
		if err != nil {
			t.Fatalf("round trip of %s failed: %v", q, err)
		}
		if back.String() != q.String() {
			t.Fatalf("round trip changed %s to %s", q, back)
		}
	}
}

// Generated databases round-trip too.
func TestGeneratedDatabasesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(322))
	q := parse.MustQuery("R(x | y, z), !S(y | x)")
	for i := 0; i < 50; i++ {
		d := gen.Database(rng, q, gen.DefaultDBOptions())
		back, err := parse.Database(d.String())
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, d)
		}
		if back.String() != d.String() {
			t.Fatalf("round trip changed\n%s\nto\n%s", d, back)
		}
	}
}
