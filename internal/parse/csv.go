package parse

import (
	"encoding/csv"
	"fmt"
	"io"

	"cqa/internal/db"
)

// DatabaseCSV loads one relation's facts from CSV: every record becomes
// one fact of the named relation with the given signature [arity(record),
// key]. The relation is declared on (or must match) the target database.
// Empty records are skipped; all records must have the same width.
func DatabaseCSV(d *db.Database, rel string, key int, r io.Reader) error {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	arity := -1
	for lineNo := 1; ; lineNo++ {
		record, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("parse: csv %s record %d: %w", rel, lineNo, err)
		}
		if len(record) == 0 {
			continue
		}
		if arity == -1 {
			arity = len(record)
			if err := d.DeclareRelation(rel, arity, key); err != nil {
				return err
			}
		}
		if len(record) != arity {
			return fmt.Errorf("parse: csv %s record %d has %d fields, want %d",
				rel, lineNo, len(record), arity)
		}
		if err := d.Insert(db.Fact{Rel: rel, Args: record}); err != nil {
			return err
		}
	}
}
