package parse_test

import (
	"strings"
	"testing"

	"cqa/internal/db"
	"cqa/internal/parse"
)

func TestQueryRoundTrip(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"R(x | y), !S(y | x)", "R(x | y), !S(y | x)"},
		{"R(x|y) & not S(y|x)", "R(x | y), !S(y | x)"},
		{"P(x, y)", "P(x, y)"},
		{"N('c' | y)", "N('c' | y)"},
		{"R(x | 'a b', y)", "R(x | 'a b', y)"},
		{"R(x | 42)", "R(x | '42')"},
	}
	for _, c := range cases {
		q, err := parse.Query(c.src)
		if err != nil {
			t.Errorf("parse(%q): %v", c.src, err)
			continue
		}
		if got := q.String(); got != c.want {
			t.Errorf("parse(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	cases := []struct {
		src, frag string
	}{
		{"", "relation name"},
		{"r(x)", "uppercase"},
		{"R(x", "expected ')'"},
		{"R()", "expected term"},
		{"R(x) garbage", "trailing"},
		{"R(x | y | z)", "two '|'"},
		{"R(x), R(y)", "self-join"},
		{"R(x), !S(y)", "safety"},
		{"R('abc)", "unterminated"},
	}
	for _, c := range cases {
		_, err := parse.Query(c.src)
		if err == nil {
			t.Errorf("parse(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("parse(%q) error = %v, want fragment %q", c.src, err, c.frag)
		}
	}
}

func TestDatabaseParsing(t *testing.T) {
	d, err := parse.Database(`
		# Figure 1
		R(Alice | Bob)
		R(Alice | George)
		S(Bob | Alice)   # inline comment
	`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 {
		t.Fatalf("size = %d", d.Size())
	}
	if !d.Has(db.F("R", "Alice", "George")) {
		t.Error("missing fact")
	}
	r := d.Relation("R")
	if r.Key != 1 || r.Arity != 2 {
		t.Errorf("signature = [%d, %d]", r.Arity, r.Key)
	}
}

func TestDatabaseSignatureInference(t *testing.T) {
	d, err := parse.Database("T(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	if r := d.Relation("T"); !r.AllKey() {
		t.Error("atom without | should be all-key")
	}
}

func TestDatabaseSignatureClash(t *testing.T) {
	_, err := parse.Database("R(a | b)\nR(a, b)")
	if err == nil || !strings.Contains(err.Error(), "redeclared") {
		t.Errorf("err = %v, want signature clash", err)
	}
}

func TestDatabaseErrors(t *testing.T) {
	if _, err := parse.Database("R(a | b) junk"); err == nil {
		t.Error("trailing junk should fail")
	}
	if _, err := parse.Database("R(a |"); err == nil {
		t.Error("unclosed atom should fail")
	}
}

func TestDatabaseLineNumbers(t *testing.T) {
	_, err := parse.Database("R(a | b)\nbroken(")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line 2", err)
	}
}

func TestDeclareQueryRelations(t *testing.T) {
	d := db.New()
	q := parse.MustQuery("R(x | y), !S(y | x)")
	if err := parse.DeclareQueryRelations(d, q); err != nil {
		t.Fatal(err)
	}
	if d.Relation("R") == nil || d.Relation("S") == nil {
		t.Error("relations not declared")
	}
	// Re-declaring with matching signature is fine.
	if err := parse.DeclareQueryRelations(d, q); err != nil {
		t.Errorf("idempotent declare failed: %v", err)
	}
}

func TestVariablesAreConstantsInFacts(t *testing.T) {
	// Lowercase arguments in facts are constants, not variables.
	d, err := parse.Database("R(alice | bob)")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Has(db.F("R", "alice", "bob")) {
		t.Error("lowercase fact arguments mishandled")
	}
}

func TestMustHelpersPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustQuery should panic on bad input")
		}
	}()
	parse.MustQuery("r(")
}
