package parse

import (
	"testing"

	"cqa/internal/db"
)

func TestFormatDatabaseRoundTrip(t *testing.T) {
	src := "R(a | 1)\nR(b | 2)\nS('x y' | 'has space', plain)\nT(k)\n"
	d := MustDatabase(src)
	out, err := FormatDatabase(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Database(out)
	if err != nil {
		t.Fatalf("rendered output does not parse: %v\n%s", err, out)
	}
	if got, want := back.String(), d.String(); got != want {
		t.Fatalf("round trip changed content:\n%s\nvs\n%s", got, want)
	}
	// Signatures survive too.
	for _, name := range d.RelationNames() {
		a, b := d.Relation(name), back.Relation(name)
		if a.Arity != b.Arity || a.Key != b.Key {
			t.Fatalf("%s signature changed: [%d,%d] vs [%d,%d]", name, a.Arity, a.Key, b.Arity, b.Key)
		}
	}
}

func TestFormatConstRejectsUnquotable(t *testing.T) {
	if _, err := FormatFact(db.F("R", "a'b", "c"), 1); err == nil {
		t.Fatal("embedded quote must be rejected")
	}
	if _, err := FormatFact(db.F("R", "", "new\nline"), 1); err == nil {
		t.Fatal("embedded newline must be rejected")
	}
	line, err := FormatFact(db.F("R", "", "v"), 1)
	if err != nil || line != "R('' | v)" {
		t.Fatalf("empty constant: %q, %v", line, err)
	}
}
