package rewrite_test

import (
	"math/rand"
	"testing"

	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
)

var allStrategies = []rewrite.PickStrategy{
	rewrite.PickFirst, rewrite.PickLast,
	rewrite.PickPositiveFirst, rewrite.PickNegatedFirst,
}

// Every pick strategy yields a semantically correct rewriting; only the
// shape differs. Checked on random queries and databases.
func TestPickStrategiesEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	tested := 0
	for tested < 30 {
		q := gen.Query(rng, opts)
		base, err := rewrite.Rewrite(q)
		if err != nil {
			continue
		}
		tested++
		d := gen.Database(rng, q, dbOpts)
		if err := parse.DeclareQueryRelations(d, q); err != nil {
			t.Fatal(err)
		}
		want := naive.IsCertain(q, d)
		if got := fo.Eval(d, base); got != want {
			t.Fatalf("default strategy wrong on %s", q)
		}
		for _, s := range allStrategies {
			f, err := rewrite.RewriteOpts(q, rewrite.Options{Pick: s})
			if err != nil {
				t.Fatalf("strategy %d failed on %s: %v", s, q, err)
			}
			if got := fo.Eval(d, f); got != want {
				t.Fatalf("strategy %d = %v, naive = %v on %s\n%s", s, got, want, q, d)
			}
		}
	}
}

// The strategies genuinely produce different formulas on queries with
// several unattacked atoms (otherwise the ablation would be vacuous).
func TestPickStrategiesDiffer(t *testing.T) {
	q := parse.MustQuery("S(x), !N1('c' | x), !N2('c' | x), !N3('c' | x)")
	sizes := map[int]bool{}
	for _, s := range allStrategies {
		f, err := rewrite.RewriteOpts(q, rewrite.Options{Pick: s})
		if err != nil {
			t.Fatal(err)
		}
		sizes[fo.Size(f)] = true
	}
	// q_Hall is symmetric in the N atoms, so sizes can coincide; use a
	// mixed query instead when they do.
	if len(sizes) == 1 {
		q2 := parse.MustQuery("Likes(p, t), !Born(p | t), !Lives(p | t)")
		s1, _ := rewrite.RewriteOpts(q2, rewrite.Options{Pick: rewrite.PickFirst})
		s2, _ := rewrite.RewriteOpts(q2, rewrite.Options{Pick: rewrite.PickLast})
		if s1.String() == s2.String() {
			t.Skip("strategies coincide on the sampled queries")
		}
	}
}
