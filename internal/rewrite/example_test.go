package rewrite_test

import (
	"fmt"

	"cqa/internal/parse"
	"cqa/internal/rewrite"
)

func ExampleRewrite() {
	// Example 4.5 of the paper: q3 = {P(x|y), ¬N(c|y)}.
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	f, _ := rewrite.Rewrite(q)
	fmt.Println(f)
	// Output:
	// ∃x∃z1(P(x, z1)) ∧ ∀z2(N('c', z2) → ∃x(∃z3(P(x, z3)) ∧ ∀z3(P(x, z3) → z3 ≠ z2)))
}

func ExampleRewrite_cyclic() {
	q := parse.MustQuery("R(x | y), !S(y | x)")
	_, err := rewrite.Rewrite(q)
	fmt.Println(err)
	// Output:
	// rewrite: attack graph is cyclic; CERTAINTY(q) is not in FO
}

func ExampleRewriteFree() {
	// The Boolean q1 has no rewriting, but with x free it does.
	q := parse.MustQuery("R(x | y), !S(y | x)")
	f, _ := rewrite.RewriteFree(q, []string{"x"})
	fmt.Println(f)
	// Output:
	// ∃z1(R(x, z1)) ∧ ∀z1(R(x, z1) → ¬S(z1, x))
}
