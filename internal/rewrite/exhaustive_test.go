package rewrite_test

import (
	"testing"

	"cqa/internal/db"
	"cqa/internal/direct"
	"cqa/internal/fo"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
)

// TestExhaustiveTwoAtomQueries enumerates a family of two-atom queries
// (positive R, optionally negated S in several variable patterns and both
// signatures) against exhaustive small databases and checks all three
// engines agree whenever the query is in scope. This complements the
// random sweeps with a complete check of a finite fragment.
func TestExhaustiveTwoAtomQueries(t *testing.T) {
	queries := []string{
		// Single atom shapes.
		"R(x | y)",
		"R(x, y)",
		"R(x | x)",
		"R(x | 'a')",
		// Two-atom join shapes.
		"R(x | y), S(y | x)",
		"R(x | y), S(x | y)",
		"R(x | y), S(y | z)",
		"R(x, y), S(y | x)",
		// Negated second atom shapes.
		"R(x | y), !S(y | x)",
		"R(x | y), !S(x | y)",
		"R(x | y), !S(y | y)",
		"R(x | y), !S(x | x)",
		"R(x, y), !S(x | y)",
		"R(x, y), !S(y | x)",
		"R(x | y), !S('a' | y)",
		"R(x | y), !S('a' | x)",
		"R(x | y), !S(y, x)",
		"R(x | y), !S(x, y)",
	}
	// Exhaustive databases over a 2×2 domain: 4 candidate R facts and 4
	// candidate S facts, all 2^8 subsets.
	dom := []string{"a", "b"}
	type pair struct{ a, b string }
	var pairs []pair
	for _, u := range dom {
		for _, v := range dom {
			pairs = append(pairs, pair{u, v})
		}
	}

	for _, src := range queries {
		q := parse.MustQuery(src)
		f, errR := rewrite.Rewrite(q)
		rAtom, _ := q.AtomByRel("R")
		sAtom, hasS := q.AtomByRel("S")
		for mask := 0; mask < 1<<8; mask++ {
			d := db.New()
			d.MustDeclare("R", rAtom.Arity(), rAtom.Key)
			if hasS {
				d.MustDeclare("S", sAtom.Arity(), sAtom.Key)
			}
			for i, p := range pairs {
				if mask&(1<<i) != 0 {
					d.MustInsert(db.F("R", p.a, p.b))
				}
				if hasS && mask&(1<<(i+4)) != 0 {
					d.MustInsert(db.F("S", p.a, p.b))
				}
			}
			want := naive.IsCertain(q, d)
			if errR == nil {
				if got := fo.Eval(d, f); got != want {
					t.Fatalf("%s: rewriting = %v, naive = %v on mask %d\n%s", src, got, want, mask, d)
				}
			}
			if got, err := direct.IsCertain(q, d); err == nil {
				if got != want {
					t.Fatalf("%s: Algorithm 1 = %v, naive = %v on mask %d\n%s", src, got, want, mask, d)
				}
			} else if errR == nil {
				t.Fatalf("%s: rewriting exists but Algorithm 1 rejected: %v", src, err)
			}
		}
		// The two front ends must agree on scope: rewriting succeeds
		// exactly when Algorithm 1 accepts.
		_, errD := direct.IsCertain(q, db.New())
		if (errR == nil) != (errD == nil) {
			t.Fatalf("%s: rewrite err = %v but direct err = %v", src, errR, errD)
		}
	}
}

// Three-atom join with a negated atom spanning both join variables.
func TestJoinWithNegation(t *testing.T) {
	q := parse.MustQuery("R(x | y), S(y | z), !N(y | z)")
	if _, err := rewrite.Rewrite(q); err != nil {
		t.Fatalf("expected FO: %v", err)
	}
	dom := []string{"a", "b"}
	var facts []db.Fact
	for _, u := range dom {
		for _, v := range dom {
			facts = append(facts,
				db.F("R", u, v), db.F("S", u, v), db.F("N", u, v))
		}
	}
	// Sampled sweep over the 2^12 subsets (every 7th mask).
	for mask := 0; mask < 1<<12; mask += 7 {
		d := db.New()
		d.MustDeclare("R", 2, 1)
		d.MustDeclare("S", 2, 1)
		d.MustDeclare("N", 2, 1)
		for i, f := range facts {
			if mask&(1<<i) != 0 {
				d.MustInsert(f)
			}
		}
		checkAgainstNaive(t, q, d)
	}
}

// A query whose negated atom has a ground key and a repeated non-key
// variable — the "slightly more complicated" rewriting case with match
// constraints z_{j'} = z_{j0}. (Patterns like !S(y | y, x) make the attack
// graph cyclic, so the acyclic exemplar repeats the variable within the
// non-key positions of a ground-keyed atom.)
func TestNegatedAtomKeyNonKeyRepeat(t *testing.T) {
	q := parse.MustQuery("R(x | y), !S('k' | y, y)")
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	dom := []string{"a", "b"}
	for mask := 0; mask < 1<<6; mask++ {
		d := db.New()
		d.MustDeclare("R", 2, 1)
		d.MustDeclare("S", 3, 1)
		i := 0
		for _, u := range dom {
			for _, v := range dom {
				if mask&(1<<i) != 0 {
					d.MustInsert(db.F("R", u, v))
				}
				i++
			}
		}
		// S facts: matching the (y, y) pattern and not.
		if mask&(1<<4) != 0 {
			d.MustInsert(db.F("S", "k", "a", "a")) // matches with y = a
		}
		if mask&(1<<5) != 0 {
			d.MustInsert(db.F("S", "k", "a", "b")) // never matches
		}
		cls, errR := rewrite.Rewrite(q)
		if errR != nil {
			t.Fatalf("rewrite: %v", errR)
		}
		want := naive.IsCertain(q, d)
		if got := fo.Eval(d, cls); got != want {
			t.Fatalf("rewriting = %v, naive = %v on\n%s", got, want, d)
		}
	}
}

// Queries with only negated non-ground atoms are impossible (safety), but
// fully ground negated atoms with an all-key positive witness are fine.
func TestGroundNegatedOnly(t *testing.T) {
	q := schema.NewQuery(
		schema.Pos(schema.NewAtom("W", 1, schema.Const("w"))),
		schema.Neg(schema.NewAtom("N", 1, schema.Const("k"), schema.Const("v"))),
	)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	d := db.New()
	d.MustDeclare("W", 1, 1)
	d.MustDeclare("N", 2, 1)
	d.MustInsert(db.F("W", "w"))
	checkAgainstNaive(t, q, d)
	d.MustInsert(db.F("N", "k", "v"))
	checkAgainstNaive(t, q, d)
	d.MustInsert(db.F("N", "k", "u"))
	checkAgainstNaive(t, q, d)
}
