package rewrite_test

import (
	"math/rand"
	"strings"
	"testing"

	"cqa/internal/db"
	"cqa/internal/direct"
	"cqa/internal/fo"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
)

// checkAgainstNaive asserts that the rewriting of q and Algorithm 1 agree
// with repair enumeration on the given database.
func checkAgainstNaive(t *testing.T, q schema.Query, d *db.Database) {
	t.Helper()
	if err := parse.DeclareQueryRelations(d, q); err != nil {
		t.Fatalf("declare: %v", err)
	}
	want := naive.IsCertain(q, d)

	f, err := rewrite.Rewrite(q)
	if err != nil {
		t.Fatalf("rewrite(%s): %v", q, err)
	}
	if got := fo.Eval(d, f); got != want {
		t.Errorf("rewriting disagrees with naive on\n%s\nquery %s\nrewriting %s\ngot %v, want %v",
			d, q, f, got, want)
	}

	got, err := direct.IsCertain(q, d)
	if err != nil {
		t.Fatalf("direct(%s): %v", q, err)
	}
	if got != want {
		t.Errorf("Algorithm 1 disagrees with naive on\n%s\nquery %s: got %v, want %v", d, q, got, want)
	}
}

// Example 4.5: the rewriting of q3 = {P(x|y), ¬N('c'|y)} exists and has
// the documented shape: block existence plus, for every N-fact, a P-block
// avoiding the value.
func TestQ3RewritingShape(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	f, err := rewrite.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	s := f.String()
	for _, frag := range []string{"P(", "N('c'", "∀", "∃", "≠"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rewriting %q lacks fragment %q", s, frag)
		}
	}
}

// Exhaustive check of q3 on all small databases over a 2×2 domain.
func TestQ3Exhaustive(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | y)")
	// Candidate facts: P(a|1), P(a|2), P(b|1), P(b|2), N(c|1), N(c|2).
	type fact = db.Fact
	all := []fact{
		db.F("P", "a", "1"), db.F("P", "a", "2"),
		db.F("P", "b", "1"), db.F("P", "b", "2"),
		db.F("N", "c", "1"), db.F("N", "c", "2"),
	}
	for mask := 0; mask < 1<<len(all); mask++ {
		d := db.New()
		d.MustDeclare("P", 2, 1)
		d.MustDeclare("N", 2, 1)
		for i, f := range all {
			if mask&(1<<i) != 0 {
				d.MustInsert(f)
			}
		}
		checkAgainstNaive(t, q, d)
	}
}

// The queries qa and qb of Example 4.6 are acyclic and must agree with
// naive enumeration on random databases.
func TestMayorsQueries(t *testing.T) {
	queries := []schema.Query{
		parse.MustQuery("Lives(p | t), !Born(p | t), !Likes(p, t)"),
		parse.MustQuery("Likes(p, t), !Born(p | t), !Lives(p | t)"),
	}
	rng := rand.New(rand.NewSource(1))
	people := []string{"ann", "bob", "cy"}
	towns := []string{"ghent", "mons", "liege"}
	for trial := 0; trial < 150; trial++ {
		d := db.New()
		d.MustDeclare("Lives", 2, 1)
		d.MustDeclare("Born", 2, 1)
		d.MustDeclare("Likes", 2, 2)
		d.MustDeclare("Mayor", 2, 1)
		for i := 0; i < 4; i++ {
			if rng.Intn(2) == 0 {
				d.MustInsert(db.F("Lives", people[rng.Intn(3)], towns[rng.Intn(3)]))
			}
			if rng.Intn(2) == 0 {
				d.MustInsert(db.F("Born", people[rng.Intn(3)], towns[rng.Intn(3)]))
			}
			if rng.Intn(2) == 0 {
				d.MustInsert(db.F("Likes", people[rng.Intn(3)], towns[rng.Intn(3)]))
			}
		}
		for _, q := range queries {
			checkAgainstNaive(t, q, d)
		}
	}
}

// q_Hall with ℓ = 2: rewriting agrees with naive on random instances.
func TestQHallRandom(t *testing.T) {
	q := parse.MustQuery("S(x), !N1('c' | x), !N2('c' | x)")
	rng := rand.New(rand.NewSource(7))
	dom := []string{"1", "2", "3"}
	for trial := 0; trial < 200; trial++ {
		d := db.New()
		d.MustDeclare("S", 1, 1)
		d.MustDeclare("N1", 2, 1)
		d.MustDeclare("N2", 2, 1)
		for _, v := range dom {
			if rng.Intn(2) == 0 {
				d.MustInsert(db.F("S", v))
			}
			if rng.Intn(3) == 0 {
				d.MustInsert(db.F("N1", "c", v))
			}
			if rng.Intn(3) == 0 {
				d.MustInsert(db.F("N2", "c", v))
			}
		}
		checkAgainstNaive(t, q, d)
	}
}

// A cyclic query must be rejected with ErrCyclic.
func TestCyclicRejected(t *testing.T) {
	q := parse.MustQuery("R(x | y), !S(y | x)")
	if _, err := rewrite.Rewrite(q); err != rewrite.ErrCyclic {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

// A non-weakly-guarded query must be rejected.
func TestNotWeaklyGuardedRejected(t *testing.T) {
	q := parse.MustQuery("X(x), Y(y), !R(x | y), !S(y | x)")
	if _, err := rewrite.Rewrite(q); err != rewrite.ErrNotWeaklyGuarded {
		t.Fatalf("err = %v, want ErrNotWeaklyGuarded", err)
	}
}

// Negation-free queries: the machinery must coincide with the classical
// rewriting on a simple acyclic join.
func TestNegationFreeJoin(t *testing.T) {
	q := parse.MustQuery("R(x | y), S(y | z)")
	rng := rand.New(rand.NewSource(11))
	dom := []string{"1", "2", "3"}
	for trial := 0; trial < 200; trial++ {
		d := db.New()
		d.MustDeclare("R", 2, 1)
		d.MustDeclare("S", 2, 1)
		for i := 0; i < 5; i++ {
			if rng.Intn(2) == 0 {
				d.MustInsert(db.F("R", dom[rng.Intn(3)], dom[rng.Intn(3)]))
			}
			if rng.Intn(2) == 0 {
				d.MustInsert(db.F("S", dom[rng.Intn(3)], dom[rng.Intn(3)]))
			}
		}
		checkAgainstNaive(t, q, d)
	}
}

// Constants and repeated variables in non-key positions (the "slightly
// more complicated" rewriting cases).
func TestConstantAndRepeatedNonKey(t *testing.T) {
	queries := []schema.Query{
		parse.MustQuery("P(x | y, y)"),
		parse.MustQuery("P(x | 'a', y)"),
		parse.MustQuery("P(x | y), !N('c' | 'a', y, y)"),
		parse.MustQuery("P(x | y, y), !N('c' | y)"),
	}
	rng := rand.New(rand.NewSource(13))
	dom := []string{"a", "b", "c", "1"}
	for trial := 0; trial < 150; trial++ {
		for _, q := range queries {
			d := db.New()
			for _, a := range q.Atoms() {
				d.MustDeclare(a.Rel, a.Arity(), a.Key)
				for i := 0; i < 4; i++ {
					if rng.Intn(2) == 0 {
						args := make([]string, a.Arity())
						for j := range args {
							args[j] = dom[rng.Intn(len(dom))]
						}
						d.MustInsert(db.Fact{Rel: a.Rel, Args: args})
					}
				}
			}
			checkAgainstNaive(t, q, d)
		}
	}
}

// A ground negated atom (Lemma 6.2): q is certain iff the fact is absent
// and the rest is certain.
func TestGroundNegatedAtom(t *testing.T) {
	q := parse.MustQuery("P(x | y), !N('c' | 'd')")
	d := db.New()
	d.MustDeclare("P", 2, 1)
	d.MustDeclare("N", 2, 1)
	d.MustInsert(db.F("P", "a", "1"))
	checkAgainstNaive(t, q, d)
	d.MustInsert(db.F("N", "c", "d"))
	checkAgainstNaive(t, q, d)
	d.MustInsert(db.F("N", "c", "e"))
	checkAgainstNaive(t, q, d)
}
