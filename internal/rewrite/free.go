package rewrite

import (
	"fmt"

	"cqa/internal/fo"
	"cqa/internal/schema"
)

// RewriteFree constructs a consistent first-order rewriting for a query
// with free variables. The paper (Section 1, citing [19, §3.3]) notes
// that free variables can be treated as constants; accordingly, the
// attack graph and the weak-guard condition are computed on q with the
// free variables frozen — which can change the classification: q1 =
// {R(x|y), ¬S(y|x)} has no Boolean rewriting, but with x free it does.
//
// The returned formula has exactly the free variables free; evaluate it
// with fo.EvalWith, or use core.CertainAnswers to enumerate the certain
// answers.
func RewriteFree(q schema.Query, free []string) (fo.Formula, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	vars := q.Vars()
	seen := make(map[string]bool, len(free))
	sub := make(map[string]schema.Term, len(free))
	for _, x := range free {
		if !vars.Has(x) {
			return nil, fmt.Errorf("rewrite: free variable %s does not occur in %s", x, q)
		}
		if seen[x] {
			return nil, fmt.Errorf("rewrite: duplicate free variable %s", x)
		}
		seen[x] = true
		sub[x] = freeze(x)
	}
	frozen := q.Substitute(sub)
	f, err := RewriteExt(schema.Ext(frozen))
	if err != nil {
		return nil, err
	}
	return f, nil
}
