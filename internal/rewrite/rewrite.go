// Package rewrite constructs consistent first-order rewritings for queries
// in sjfBCQ¬ with weakly-guarded negation and an acyclic attack graph,
// following the proof of Lemma 6.1 (and Algorithm 1) of Koutris & Wijsen,
// PODS 2018:
//
//   - repeatedly pick an unattacked, non-all-key atom F;
//   - reify the variables of key(F) (Corollary 6.9): treat them as
//     constants and bind them with an outer ∃;
//   - if F is positive, assert that F's block is non-empty and that every
//     fact of the block matches F and certifies the rest of the query
//     (universal quantification over the block);
//   - if F is negated, assert the rest of the query and, for every fact of
//     F's block, the rest of the query strengthened with a disequality
//     (Lemmas 6.2/6.5); disequalities are carried natively rather than
//     through the fresh all-key relation E of Lemma 6.6, which is
//     equivalent because all-key atoms neither attack nor contribute
//     functional dependencies;
//   - when only all-key atoms remain, emit the query itself: a database is
//     its own repair on all-key relations.
//
// Reified ("frozen") variables are represented during recursion as marked
// constants so that the attack-graph machinery treats them as constants,
// exactly as the proof does; the emitted formula re-binds them with real
// quantifiers.
package rewrite

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"cqa/internal/attack"
	"cqa/internal/fo"
	"cqa/internal/schema"
)

// marker prefixes the name of a frozen variable embedded in a constant.
// It is non-printable, so it cannot collide with user constants.
const marker = "\x01"

func freeze(name string) schema.Term  { return schema.Const(marker + name) }
func isFrozen(t schema.Term) bool     { return !t.IsVar && strings.HasPrefix(t.Name, marker) }
func frozenName(t schema.Term) string { return strings.TrimPrefix(t.Name, marker) }

// term2fo converts a rewriting-internal term to a formula term, turning
// frozen constants back into variables.
func term2fo(t schema.Term) schema.Term {
	if isFrozen(t) {
		return schema.Var(frozenName(t))
	}
	return t
}

// ErrNotWeaklyGuarded reports that the query is outside the scope of
// Theorem 4.3.
var ErrNotWeaklyGuarded = errors.New("rewrite: negation is not weakly-guarded")

// ErrCyclic reports that the attack graph is cyclic, so by Theorem 4.3 no
// consistent first-order rewriting exists.
var ErrCyclic = errors.New("rewrite: attack graph is cyclic; CERTAINTY(q) is not in FO")

// PickStrategy selects which unattacked non-all-key atom the rewriting
// eliminates first when several qualify. Any strategy yields a correct
// rewriting (the proof of Lemma 6.1 works for every valid pick); the
// choice affects only the shape and size of the formula, which the
// ablation benchmarks measure.
type PickStrategy int

// Pick strategies.
const (
	// PickFirst takes the first unattacked atom in query order (the
	// default, and the order used in the golden tests).
	PickFirst PickStrategy = iota
	// PickLast takes the last unattacked atom in query order.
	PickLast
	// PickPositiveFirst prefers positive atoms over negated ones.
	PickPositiveFirst
	// PickNegatedFirst prefers negated atoms over positive ones.
	PickNegatedFirst
)

// Options configures the rewriting construction.
type Options struct {
	Pick PickStrategy
}

// Rewrite returns a consistent first-order rewriting for q: a sentence φ
// such that for every database db, db ⊨ φ iff q is true in every repair of
// db. It fails when q is invalid, negation is not weakly-guarded, or the
// attack graph is cyclic.
func Rewrite(q schema.Query) (fo.Formula, error) {
	return RewriteExt(schema.Ext(q))
}

// RewriteOpts is Rewrite with explicit options.
func RewriteOpts(q schema.Query, opt Options) (fo.Formula, error) {
	return rewriteExtOpts(schema.Ext(q), opt)
}

// RewriteExt is Rewrite for extended queries with disequalities
// (sjfBCQ¬≠, Definition 6.3).
func RewriteExt(e schema.ExtQuery) (fo.Formula, error) {
	return rewriteExtOpts(e, Options{})
}

func rewriteExtOpts(e schema.ExtQuery, opt Options) (fo.Formula, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	for _, d := range e.Diseqs {
		if len(d.Left) != len(d.Right) {
			return nil, fmt.Errorf("rewrite: malformed disequality %s", d)
		}
		for _, t := range d.Right {
			if t.IsVar {
				return nil, fmt.Errorf("rewrite: disequality %s has a variable right-hand side", d)
			}
		}
	}
	if !e.WeaklyGuarded() {
		return nil, ErrNotWeaklyGuarded
	}
	if !attack.New(e.Query).IsAcyclic() {
		return nil, ErrCyclic
	}
	r := &rewriter{used: make(map[string]bool), opt: opt}
	for v := range e.Vars() {
		r.used[v] = true
	}
	// Pre-frozen variables (free variables of RewriteFree) appear as
	// marked constants; their names are taken too.
	for _, l := range e.Lits {
		for _, t := range l.Atom.Terms {
			if isFrozen(t) {
				r.used[frozenName(t)] = true
			}
		}
	}
	f, err := r.rewrite(e)
	if err != nil {
		return nil, err
	}
	return fo.Simplify(f), nil
}

type rewriter struct {
	used map[string]bool
	next int
	opt  Options
}

// fresh returns a variable name unused so far.
func (r *rewriter) fresh() string {
	for {
		r.next++
		name := "z" + strconv.Itoa(r.next)
		if !r.used[name] {
			r.used[name] = true
			return name
		}
	}
}

func (r *rewriter) rewrite(e schema.ExtQuery) (fo.Formula, error) {
	f, negated, ok := pick(e.Query, r.opt.Pick)
	if !ok {
		return baseCase(e), nil
	}

	// Reify key(F): Corollary 6.9 lets us treat the (unattacked) key
	// variables as constants and existentially quantify the rewriting.
	keyVars := orderedVars(f.KeyTerms(), nil)
	if len(keyVars) > 0 {
		sub := make(map[string]schema.Term, len(keyVars))
		for _, v := range keyVars {
			sub[v] = freeze(v)
		}
		e = e.Substitute(sub)
		f = f.Substitute(sub)
	}

	var body fo.Formula
	var err error
	if negated {
		body, err = r.negatedCase(e, f)
	} else {
		body, err = r.positiveCase(e, f)
	}
	if err != nil {
		return nil, err
	}
	return fo.NewExists(keyVars, body), nil
}

// pick selects an unattacked atom that is not all-key, returning the atom
// and whether it occurs negated. ok=false means all remaining atoms are
// all-key (the base case). The attack graph of a query that reaches this
// point is acyclic (Lemma 6.10 and atom elimination preserve acyclicity),
// so an unattacked non-all-key atom exists whenever a non-all-key atom
// does.
func pick(q schema.Query, strategy PickStrategy) (f schema.Atom, negated, ok bool) {
	any := false
	for _, l := range q.Lits {
		if !l.Atom.AllKey() {
			any = true
			break
		}
	}
	if !any {
		return schema.Atom{}, false, false
	}
	g := attack.New(q)
	var candidates []string
	for _, rel := range g.Atoms() {
		a, _ := q.AtomByRel(rel)
		if a.AllKey() || g.InDegree(rel) != 0 {
			continue
		}
		candidates = append(candidates, rel)
	}
	if len(candidates) == 0 {
		panic(fmt.Sprintf("rewrite: no unattacked non-all-key atom in %s (attack graph cyclic?)", q))
	}
	chosen := candidates[0]
	switch strategy {
	case PickLast:
		chosen = candidates[len(candidates)-1]
	case PickPositiveFirst:
		for _, rel := range candidates {
			if !q.IsNegated(rel) {
				chosen = rel
				break
			}
		}
	case PickNegatedFirst:
		for _, rel := range candidates {
			if q.IsNegated(rel) {
				chosen = rel
				break
			}
		}
	}
	a, _ := q.AtomByRel(chosen)
	return a, q.IsNegated(chosen), true
}

// positiveCase handles F ∈ q⁺ with a variable-free key: the rewriting is
//
//	∃z⃗ R(k⃗, z⃗) ∧ ∀z⃗ ( R(k⃗, z⃗) → match(z⃗, s⃗) ∧ ψ )
//
// where k⃗ is the (ground) key of F, s⃗ its non-key terms, match equates
// z_j with constants and with repeated-variable positions, and ψ rewrites
// q \ {F} with the non-key variables frozen to the z's. This covers the
// paper's "slightly more complicated" cases where s⃗ contains constants or
// double occurrences of the same variable.
func (r *rewriter) positiveCase(e schema.ExtQuery, f schema.Atom) (fo.Formula, error) {
	zs, matchEqs, sub := r.bindNonKey(f)
	rest := schema.ExtQuery{Query: e.Query.Without(f.Rel), Diseqs: e.Diseqs}.Substitute(sub)
	psi, err := r.rewrite(rest)
	if err != nil {
		return nil, err
	}
	keyTerms := foTerms(f.KeyTerms())
	zTerms := make([]schema.Term, len(zs))
	for i, z := range zs {
		zTerms[i] = schema.Var(z)
	}
	atom := fo.Atom{Rel: f.Rel, Key: f.Key, Terms: append(keyTerms, zTerms...)}
	inner := fo.NewAnd(append(matchEqs, psi)...)
	return fo.NewAnd(
		fo.NewExists(zs, atom),
		fo.NewForall(zs, fo.Implies{L: atom, R: inner}),
	), nil
}

// negatedCase handles F ∈ q⁻ with a variable-free key, following
// Lemmas 6.2 and 6.5: the rewriting is
//
//	ψ₀ ∧ ∀z⃗ ( R(k⃗, z⃗) ∧ match(z⃗, s⃗) → χ(z⃗) )
//
// where ψ₀ rewrites q \ {¬F} and χ rewrites q \ {¬F} with the added
// disequality y⃗ ≠ z⃗ (y⃗ the distinct non-key variables of F). When F has
// no non-key variables the universal part degenerates to ¬R(k⃗, s⃗)
// (Lemma 6.2).
func (r *rewriter) negatedCase(e schema.ExtQuery, f schema.Atom) (fo.Formula, error) {
	rest := schema.ExtQuery{Query: e.Query.Without(f.Rel), Diseqs: e.Diseqs}
	psi0, err := r.rewrite(rest)
	if err != nil {
		return nil, err
	}

	yVars := orderedVars(f.NonKeyTerms(), nil)
	if len(yVars) == 0 {
		// s⃗ is ground: the certainty condition is simply F ∉ db.
		atom := fo.Atom{Rel: f.Rel, Key: f.Key, Terms: foTerms(f.Terms)}
		return fo.NewAnd(psi0, fo.Not{F: atom}), nil
	}

	zs, matchEqs, sub := r.bindNonKey(f)
	// The added disequality ⟨y⃗⟩ ≠ ⟨proj(z⃗)⟩: each distinct non-key
	// variable against the frozen z of its first position.
	left := make([]schema.Term, len(yVars))
	right := make([]schema.Term, len(yVars))
	for i, y := range yVars {
		left[i] = schema.Var(y)
		right[i] = sub[y]
	}
	chiQuery := rest.WithDiseq(schema.NewDiseq(left, right))
	chi, err := r.rewrite(chiQuery)
	if err != nil {
		return nil, err
	}

	keyTerms := foTerms(f.KeyTerms())
	zTerms := make([]schema.Term, len(zs))
	for i, z := range zs {
		zTerms[i] = schema.Var(z)
	}
	atom := fo.Atom{Rel: f.Rel, Key: f.Key, Terms: append(keyTerms, zTerms...)}
	guard := fo.NewAnd(append([]fo.Formula{atom}, matchEqs...)...)
	return fo.NewAnd(psi0, fo.NewForall(zs, fo.Implies{L: guard, R: chi})), nil
}

// bindNonKey introduces one fresh variable z_j per non-key position of f
// and returns: the z names, the match constraints (z_j = c for constant
// positions, z_j = z_{j₀} for repeated variables), and the substitution
// sending each distinct non-key variable to its frozen first-position z.
func (r *rewriter) bindNonKey(f schema.Atom) (zs []string, matchEqs []fo.Formula, sub map[string]schema.Term) {
	sub = make(map[string]schema.Term)
	firstPos := make(map[string]string) // var -> z name of first occurrence
	for _, t := range f.NonKeyTerms() {
		z := r.fresh()
		zs = append(zs, z)
		if t.IsVar {
			if prev, seen := firstPos[t.Name]; seen {
				matchEqs = append(matchEqs, fo.Eq{L: schema.Var(z), R: schema.Var(prev)})
			} else {
				firstPos[t.Name] = z
				sub[t.Name] = freeze(z)
			}
		} else {
			matchEqs = append(matchEqs, fo.Eq{L: schema.Var(z), R: term2fo(t)})
		}
	}
	return zs, matchEqs, sub
}

// baseCase emits the query itself: all remaining atoms are all-key, so the
// database restricted to them is consistent and is its own repair.
func baseCase(e schema.ExtQuery) fo.Formula {
	var conj []fo.Formula
	var order []string
	seen := make(schema.VarSet)
	for _, l := range e.Lits {
		order = appendVars(order, seen, l.Atom.Terms)
		atom := fo.Atom{Rel: l.Atom.Rel, Key: l.Atom.Key, Terms: foTerms(l.Atom.Terms)}
		if l.Neg {
			conj = append(conj, fo.Not{F: atom})
		} else {
			conj = append(conj, atom)
		}
	}
	for _, d := range e.Diseqs {
		order = appendVars(order, seen, d.Left)
		var disj []fo.Formula
		for i := range d.Left {
			disj = append(disj, fo.Neq(term2fo(d.Left[i]), term2fo(d.Right[i])))
		}
		conj = append(conj, fo.NewOr(disj...))
	}
	return fo.NewExists(order, fo.NewAnd(conj...))
}

// orderedVars returns the distinct variable names of terms in order of
// first occurrence, appending to acc.
func orderedVars(terms []schema.Term, acc []string) []string {
	seen := make(map[string]bool, len(acc))
	for _, v := range acc {
		seen[v] = true
	}
	for _, t := range terms {
		if t.IsVar && !seen[t.Name] {
			seen[t.Name] = true
			acc = append(acc, t.Name)
		}
	}
	return acc
}

func appendVars(order []string, seen schema.VarSet, terms []schema.Term) []string {
	for _, t := range terms {
		if t.IsVar && !seen.Has(t.Name) {
			seen[t.Name] = true
			order = append(order, t.Name)
		}
	}
	return order
}

func foTerms(ts []schema.Term) []schema.Term {
	out := make([]schema.Term, len(ts))
	for i, t := range ts {
		out[i] = term2fo(t)
	}
	return out
}
