package cqa

import (
	"fmt"
	"math/rand"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/reduction"
	"cqa/internal/rewrite"
)

// Ablation A1: the pick order of unattacked atoms in the rewriting
// construction. Any order is correct (Lemma 6.1); the formula size and
// construction time differ. The size is reported as a custom metric.
func BenchmarkAblationPickOrder(b *testing.B) {
	queries := map[string]string{
		"qHall4": "S(x), !N1('c' | x), !N2('c' | x), !N3('c' | x), !N4('c' | x)",
		"qb":     "Likes(p, t), !Born(p | t), !Lives(p | t)",
		// qa has both a positive and negated unattacked atoms, so the
		// strategies produce genuinely different formulas.
		"qa": "Lives(p | t), !Born(p | t), !Likes(p, t)",
	}
	strategies := map[string]rewrite.PickStrategy{
		"first":    rewrite.PickFirst,
		"last":     rewrite.PickLast,
		"posFirst": rewrite.PickPositiveFirst,
		"negFirst": rewrite.PickNegatedFirst,
	}
	for qName, src := range queries {
		q := parse.MustQuery(src)
		for sName, s := range strategies {
			b.Run(fmt.Sprintf("%s/%s", qName, sName), func(b *testing.B) {
				size := 0
				for i := 0; i < b.N; i++ {
					f, err := rewrite.RewriteOpts(q, rewrite.Options{Pick: s})
					if err != nil {
						b.Fatal(err)
					}
					size = fo.Size(f)
				}
				b.ReportMetric(float64(size), "ast-nodes")
			})
		}
	}
}

// Ablation A2: the guard-based quantifier restriction in the FO
// evaluator, against the unoptimized full-active-domain reference. This
// is the design choice that makes rewriting evaluation usable.
func BenchmarkAblationGuardRestriction(b *testing.B) {
	q := parse.MustQuery("Lives(p | t), !Born(p | t), !Likes(p, t)")
	f, err := rewrite.Rewrite(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, blocks := range []int{8, 32} {
		rng := rand.New(rand.NewSource(int64(blocks)))
		opt := gen.DBOptions{BlocksPerRelation: blocks, MaxBlockSize: 2, DomainPerVariable: blocks, ConstantBias: 0.7}
		d := gen.Database(rng, q, opt)
		b.Run(fmt.Sprintf("guarded/blocks=%d", blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fo.Eval(d, f)
			}
		})
		b.Run(fmt.Sprintf("reference/blocks=%d", blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fo.EvalReference(d, f)
			}
		})
	}
}

// Ablation A3: parallel vs sequential repair enumeration on a database
// whose certainty requires visiting the whole repair space (q is certain,
// so there is no early exit).
func BenchmarkAblationParallelNaive(b *testing.B) {
	q := reduction.Q1()
	// A database where q1 is certain (no S facts), so enumeration has no
	// early exit and must visit all 2^12 repairs.
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 2, 1)
	for i := 0; i < 12; i++ {
		k := fmt.Sprintf("g%d", i)
		d.MustInsert(db.F("R", k, "b1"))
		d.MustInsert(db.F("R", k, "b2"))
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !naive.IsCertain(q, d) {
				b.Fatal("q1 should be certain without S facts")
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !naive.IsCertainParallel(q, d, 0) {
				b.Fatal("q1 should be certain without S facts")
			}
		}
	})
}

// Ablation A4: preparing a query once vs re-classifying per call. The
// per-call saving is the whole classification + rewriting construction.
func BenchmarkAblationPrepared(b *testing.B) {
	q := parse.MustQuery("Likes(p, t), !Born(p | t), !Lives(p | t)")
	rng := rand.New(rand.NewSource(5))
	d := gen.Database(rng, q, gen.DBOptions{BlocksPerRelation: 32, MaxBlockSize: 2, DomainPerVariable: 32, ConstantBias: 0.7})
	b.Run("one-shot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Certain(q, d, core.EngineAuto); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		p, err := core.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Certain(d)
		}
	})
}
