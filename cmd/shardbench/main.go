// Command shardbench measures how the sharded serving tier's read
// throughput scales with shard count on one machine, and records the
// result in BENCH_shard.json.
//
// It boots two real process topologies with internal/shard/chaostest —
// a router over 1 shard server, then a router over -shards shard
// servers, every shard pinned to GOMAXPROCS=1 — and drives each with
// the loadgen phased sharded workload (write → quiesce → read). The
// read phase issues only ground-key queries: pinned single-atom reads
// and, by default on every read, the confined two-atom join
// R('k' | x), !S('k' | x), which the router serves by fetching the
// owning shard's slice (same-key blocks co-locate) and evaluating the
// merge locally. Per-read cost on that path is proportional to the
// slice a shard holds, so partitioning the database N ways cuts the
// work each read does — the throughput scaling this benchmark records
// is capacity freed by partitioning, not parallel CPUs (on a 1-CPU
// machine the two topologies share one core).
//
// Usage:
//
//	shardbench [-shards 4] [-keys 12000] [-writes 60] [-readers 8]
//	           [-reads 120] [-join-every 1] [-seed 1]
//	           [-out BENCH_shard.json] [-min-speedup 3] [-cqad path]
//
// Exit status: 0 when both runs validate cleanly and the speedup meets
// -min-speedup; 1 otherwise.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cqa/internal/loadgen"
	"cqa/internal/shard/chaostest"
)

type runResult struct {
	Shards      int     `json:"shards"`
	ReadRPS     float64 `json:"read_rps"`
	ReadP50Ms   float64 `json:"read_p50_ms"`
	ReadP99Ms   float64 `json:"read_p99_ms"`
	Reads       int     `json:"reads"`
	Failures    int     `json:"failures"`
	Validated   int     `json:"validated"`
	WriteMs     float64 `json:"write_phase_ms"`
	QuiesceMs   float64 `json:"quiesce_phase_ms"`
	ReadPhaseMs float64 `json:"read_phase_ms"`
}

type benchDoc struct {
	Date       string    `json:"date"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Topology   string    `json:"topology"`
	Keys       int       `json:"keys"`
	Writes     int       `json:"writes"`
	Readers    int       `json:"readers"`
	Reads      int       `json:"reads_per_reader"`
	JoinEvery  int       `json:"join_every"`
	Seed       int64     `json:"seed"`
	Baseline   runResult `json:"baseline"`
	Sharded    runResult `json:"sharded"`
	Speedup    float64   `json:"speedup"`
	MinSpeedup float64   `json:"min_speedup"`
	Pass       bool      `json:"pass"`
}

func main() {
	shards := flag.Int("shards", 4, "shard count for the scaled run")
	keys := flag.Int("keys", 12000, "block key space (sizes the database)")
	writes := flag.Int("writes", 60, "write batches before the read phase")
	readers := flag.Int("readers", 8, "concurrent read clients")
	reads := flag.Int("reads", 120, "reads per client")
	joinEvery := flag.Int("join-every", 1, "every n-th read is the confined two-atom join (1 = all)")
	seed := flag.Int64("seed", 1, "workload seed")
	out := flag.String("out", "BENCH_shard.json", "result file")
	minSpeedup := flag.Float64("min-speedup", 3, "fail below this sharded/baseline read-throughput ratio (0 disables)")
	cqad := flag.String("cqad", "", "cqad binary (empty builds it)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dir, err := os.MkdirTemp("", "shardbench-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	bin := *cqad
	if bin == "" {
		fmt.Println("building cqad...")
		if bin, err = chaostest.BuildCqad(dir); err != nil {
			fatal(err)
		}
	}

	opts := loadgen.ShardedOptions{
		Keys:      *keys,
		Writes:    *writes,
		Readers:   *readers,
		Reads:     *reads,
		JoinEvery: *joinEvery,
		Seed:      *seed,
		Timeout:   120 * time.Second,
	}
	baseline, err := oneRun(ctx, bin, dir+"/base", 1, opts)
	if err != nil {
		fatal(err)
	}
	scaled, err := oneRun(ctx, bin, dir+"/scaled", *shards, opts)
	if err != nil {
		fatal(err)
	}

	doc := benchDoc{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Topology:   "router over N cqad shard processes, each GOMAXPROCS=1, loopback HTTP",
		Keys:       *keys,
		Writes:     *writes,
		Readers:    *readers,
		Reads:      *reads,
		JoinEvery:  *joinEvery,
		Seed:       *seed,
		Baseline:   baseline,
		Sharded:    scaled,
		MinSpeedup: *minSpeedup,
	}
	if baseline.ReadRPS > 0 {
		doc.Speedup = scaled.ReadRPS / baseline.ReadRPS
	}
	doc.Pass = *minSpeedup <= 0 || doc.Speedup >= *minSpeedup
	buf, _ := json.MarshalIndent(doc, "", "  ")
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("baseline (1 shard):  %.0f req/s\nsharded  (%d shards): %.0f req/s\nspeedup: %.2fx (min %.1fx) → %s\n",
		baseline.ReadRPS, *shards, scaled.ReadRPS, doc.Speedup, *minSpeedup, map[bool]string{true: "PASS", false: "FAIL"}[doc.Pass])
	fmt.Printf("recorded in %s\n", *out)
	if !doc.Pass {
		os.Exit(1)
	}
}

// oneRun boots a router-over-n topology, drives the phased workload,
// validates every read, and tears the topology down.
func oneRun(ctx context.Context, bin, dir string, n int, opts loadgen.ShardedOptions) (runResult, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return runResult{}, err
	}
	tp, err := chaostest.Boot(chaostest.BootOptions{
		Bin:        bin,
		Dir:        dir,
		Shards:     n,
		ShardEnv:   []string{"GOMAXPROCS=1"},
		ShardArgs:  []string{"-max-inflight", "512", "-timeout", "60s"},
		RouterArgs: []string{"-max-inflight", "512", "-timeout", "60s"},
	})
	if err != nil {
		return runResult{}, err
	}
	defer tp.Close()
	fmt.Printf("measuring router over %d shard(s)...\n", n)
	rep, err := loadgen.RunSharded(ctx, tp.Router.URL, opts)
	if err != nil {
		return runResult{}, fmt.Errorf("run over %d shard(s): %w", n, err)
	}
	checked, err := loadgen.ValidateSharded(rep)
	if err != nil {
		return runResult{}, fmt.Errorf("validation over %d shard(s): %w", n, err)
	}
	fmt.Printf("  %s\n  validated %d answer(s)\n", rep, checked)
	return runResult{
		Shards:      n,
		ReadRPS:     rep.ReadThroughput(),
		ReadP50Ms:   float64(rep.Latency.P50) / 1e6,
		ReadP99Ms:   float64(rep.Latency.P99) / 1e6,
		Reads:       rep.Reads,
		Failures:    rep.Failures,
		Validated:   checked,
		WriteMs:     float64(rep.WriteDuration) / 1e6,
		QuiesceMs:   float64(rep.QuiesceDuration) / 1e6,
		ReadPhaseMs: float64(rep.ReadDuration) / 1e6,
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shardbench:", err)
	os.Exit(1)
}
