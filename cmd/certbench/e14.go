package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"cqa/internal/engine"
	"cqa/internal/loadgen"
	"cqa/internal/metrics"
	"cqa/internal/server"
	"cqa/internal/shard"
	"cqa/internal/store"
)

// runE14 exercises the versioned mutable store through the daemon: an
// in-process server backed by a durable store.Set takes a mixed
// read/write workload (one writer, concurrent readers), every served
// answer is cross-checked against core.Certain on the contemporaneous
// snapshot, and the incremental result-cache invalidation is then
// demonstrated deterministically: a write to an unmentioned relation
// keeps a cached answer, a write to a mentioned one recomputes it.
func runE14(quick bool) error {
	writes, readers := 60, 6
	if quick {
		writes, readers = 25, 3
	}

	dir, err := os.MkdirTemp("", "certbench-e14-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	set, err := shard.OpenSet(store.Options{Dir: dir}, 1)
	if err != nil {
		return err
	}
	defer set.CloseAll()
	eng := engine.New(engine.Options{})
	defer eng.Close()
	srv := server.New(server.Options{Engine: eng, Stores: set})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Phase 1: mixed read/write workload with contemporaneous-snapshot
	// validation. Every read carries the store version it was answered
	// at; ground truth is recomputed on the client-side shadow of exactly
	// that version.
	rep, err := loadgen.RunMutable(context.Background(), ts.URL, loadgen.MutableOptions{
		Database: "e14",
		Writes:   writes,
		Readers:  readers,
		Seed:     14,
	})
	if err != nil {
		return err
	}
	if rep.Failures > 0 {
		for _, c := range rep.Calls {
			if c.Err != "" {
				return fmt.Errorf("read failed: q%d: %s", c.QueryIdx, c.Err)
			}
		}
	}
	checked, err := loadgen.ValidateMutable(rep)
	if err != nil {
		return fmt.Errorf("served answers disagree with core.Certain on contemporaneous snapshots: %w", err)
	}
	fmt.Printf("daemon under mixed read/write load (1 writer × %d batches, %d readers, durable store):\n", writes, readers)
	fmt.Printf("  %s\n", strings.ReplaceAll(rep.String(), "\n", "\n  "))
	fmt.Printf("  self-validation: %d served answers agree with core.Certain on the version each was served at (%d distinct versions)\n",
		checked, len(rep.Shadows))
	// q2 mentions only the unwritten relation T, so writes never evict its
	// entry; misses beyond the first happen only when an evaluation
	// straddles a version bump and its (now stale) put is discarded.
	// Require a clear majority of hits — the exact hit/miss sequence is
	// forced deterministically in phase 2 below.
	if q2 := rep.PerQuery[2]; q2.Reads >= 10 && q2.Cached*2 < q2.Reads {
		return fmt.Errorf("q2 mentions only the unwritten relation T but had %d misses in %d reads — incremental invalidation is not holding",
			q2.Reads-q2.Cached, q2.Reads)
	}

	// Phase 2: deterministic invalidation demonstration on a quiet
	// database (no concurrent traffic, so every hit/miss is forced).
	steps := []struct {
		do   string // "read" or a write path
		body any
		want string // for reads: "miss" or "hit"
	}{
		{"read", nil, "miss"}, // first evaluation
		{"read", nil, "hit"},  // same version
		{"/v1/db/insert", server.DBWriteRequest{Database: "quiet", Facts: "T(x9 | y9)"}, ""},
		{"read", nil, "hit"}, // T is not mentioned by the query
		{"/v1/db/insert", server.DBWriteRequest{Database: "quiet", Facts: "R(k9 | v9)"}, ""},
		{"read", nil, "miss"}, // R is mentioned: invalidated + recomputed
		{"read", nil, "hit"},
	}
	if err := postOK(ts.URL+"/v1/db/create", server.DBCreateRequest{
		Name:  "quiet",
		Facts: "R(k0 | v0)\nS(k0 | v1)\nT(t0 | u0)\n",
	}); err != nil {
		return err
	}
	const query = "R(x | y), !S(y | x)"
	for i, step := range steps {
		if step.do != "read" {
			if err := postOK(ts.URL+step.do, step.body); err != nil {
				return fmt.Errorf("step %d: %w", i, err)
			}
			continue
		}
		resp, err := http.Post(ts.URL+"/v1/certain", "application/json",
			strings.NewReader(fmt.Sprintf(`{"query": %q, "database": "quiet"}`, query)))
		if err != nil {
			return err
		}
		var out server.CertainResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if out.Cached == nil {
			return fmt.Errorf("step %d: named-db response lacks cached field", i)
		}
		got := "miss"
		if *out.Cached {
			got = "hit"
		}
		if got != step.want {
			return fmt.Errorf("step %d: result cache %s, want %s (version %d)", i, got, step.want, out.Version)
		}
	}
	fmt.Println("  incremental invalidation: re-read=hit, write T(unmentioned)=hit, write R(mentioned)=miss then hit — only relevant writes invalidate")

	// The ops surfaces must reflect the store activity.
	stats, _, metricsText, err := scrapeOps(ts.URL)
	if err != nil {
		return err
	}
	if stats.UptimeSeconds <= 0 {
		return fmt.Errorf("/v1/stats uptimeSeconds = %v", stats.UptimeSeconds)
	}
	if stats.Engine.ResultHits == 0 || stats.Engine.ResultInvalidations == 0 {
		return fmt.Errorf("/v1/stats shows no result-cache activity: %+v", stats.Engine)
	}
	if wal := stats.Server["wal_records"].(float64); wal <= 0 {
		return fmt.Errorf("/v1/stats wal_records = %v", wal)
	}
	if err := metrics.LintPrometheus(metricsText); err != nil {
		return fmt.Errorf("/metrics exposition does not lint: %w", err)
	}
	exp, err := metrics.ParsePrometheus(metricsText)
	if err != nil {
		return err
	}
	for _, name := range []string{"wal_records", "snapshot_version", "result_cache_hits", "result_cache_invalidations"} {
		if _, ok := exp.Value(name); !ok {
			return fmt.Errorf("/metrics lacks %s", name)
		}
	}
	var info server.DBInfoResponse
	resp, err := http.Get(ts.URL + "/v1/db/info")
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if len(info.Databases) != 2 {
		return fmt.Errorf("/v1/db/info lists %d databases, want 2", len(info.Databases))
	}
	for _, d := range info.Databases {
		if !d.Durable || d.WALRecords == 0 {
			return fmt.Errorf("/v1/db/info: %s should be durable with WAL records: %+v", d.Name, d)
		}
	}
	fmt.Printf("  ops surfaces: uptime=%.1fs result_cache=%d hits/%d misses/%d invalidations, wal_records=%v, %d durable databases\n",
		stats.UptimeSeconds, stats.Engine.ResultHits, stats.Engine.ResultMisses,
		stats.Engine.ResultInvalidations, stats.Server["wal_records"], len(info.Databases))
	return nil
}

// postOK posts body as JSON and requires a 200.
func postOK(url string, body any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(buf)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b := make([]byte, 512)
		n, _ := resp.Body.Read(b)
		return fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, b[:n])
	}
	return nil
}
