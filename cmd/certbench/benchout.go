// BENCH_eval.json emission: the -bench-out flag runs the compiled-vs-
// interpreted evaluation comparison on the E-series rewriting workload
// and writes one JSON record per (query, size, engine) so the repo's
// bench trajectory is diffable across PRs. The record set (queries,
// sizes, engines, field order) is deterministic; the timings are
// whatever the host measures. The run fails — non-zero exit — if the
// compiled evaluator is slower than the tree walker on the largest
// instance, which is the `make bench-smoke` regression gate.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/planner"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
)

type benchEntry struct {
	Experiment  string `json:"experiment"`
	Query       string `json:"query"`
	Blocks      int    `json:"blocks"`
	Facts       int    `json:"facts"`
	Engine      string `json:"engine"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// Reevals counts registration re-evaluations across the E17 delta
	// workload (zero and omitted for the per-op experiments).
	Reevals int64 `json:"reevals,omitempty"`
}

// benchQueries are the E-series rewriting workloads measured by
// -bench-out: the E7 scaling query and a guarded negation pair.
var benchQueries = []string{
	"Lives(p | t), !Born(p | t), !Likes(p, t)",
	"R0(x0 | x1), R1(x1 | x2), R2(x2 | x3), !N(x0 | x1)",
}

func benchSizes(quick bool) []int {
	if quick {
		return []int{4, 16, 64}
	}
	return []int{64, 256, 1024}
}

// benchMeta stamps a BENCH_eval.json run with the toolchain and host
// shape the numbers were measured under.
type benchMeta struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// benchDocOut is the BENCH_eval.json document: run metadata plus the
// per-(experiment, query, size, engine) entries.
type benchDocOut struct {
	Meta    benchMeta    `json:"meta"`
	Entries []benchEntry `json:"entries"`
}

func runBenchOut(path string, quick bool) error {
	var entries []benchEntry
	type largest struct{ tree, compiled int64 }
	var last largest
	// compiledNs keeps the E15 compiled baselines for the E18 bitmap
	// comparison, keyed by (query, blocks).
	compiledNs := map[string]int64{}
	for _, src := range benchQueries {
		q := parse.MustQuery(src)
		f, err := rewrite.Rewrite(q)
		if err != nil {
			return fmt.Errorf("bench-out: %s has no rewriting: %v", src, err)
		}
		prog, err := fo.Compile(f)
		if err != nil {
			return fmt.Errorf("bench-out: compile %s: %v", src, err)
		}
		for _, blocks := range benchSizes(quick) {
			rng := rand.New(rand.NewSource(int64(blocks)))
			opt := gen.DBOptions{BlocksPerRelation: blocks, MaxBlockSize: 2,
				DomainPerVariable: blocks, ConstantBias: 0.7}
			d := gen.Database(rng, q, opt)
			declareAll(d, q)
			want := fo.Eval(d, f)
			bound := prog.Bind(d.Interned())
			if bound.Eval() != want || bound.EvalParallel(0, 1) != want {
				return fmt.Errorf("bench-out: compiled disagrees with tree walker on %s blocks=%d", src, blocks)
			}
			runs := []struct {
				engine string
				body   func()
			}{
				{"tree-walk", func() { fo.Eval(d, f) }},
				{"compiled", func() { bound.Eval() }},
				{"compiled-parallel", func() { bound.EvalParallel(0, 0) }},
			}
			for _, r := range runs {
				body := r.body
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						body()
					}
				})
				e := benchEntry{
					Experiment:  "E15",
					Query:       src,
					Blocks:      blocks,
					Facts:       d.Size(),
					Engine:      r.engine,
					NsPerOp:     res.NsPerOp(),
					AllocsPerOp: res.AllocsPerOp(),
					BytesPerOp:  res.AllocedBytesPerOp(),
				}
				entries = append(entries, e)
				fmt.Printf("  %-45s blocks=%-5d %-17s %10d ns/op %6d allocs/op\n",
					src, blocks, r.engine, e.NsPerOp, e.AllocsPerOp)
				switch r.engine {
				case "tree-walk":
					last.tree = e.NsPerOp
				case "compiled":
					last.compiled = e.NsPerOp
					compiledNs[benchKey(src, blocks)] = e.NsPerOp
				}
			}
		}
	}
	if last.compiled > last.tree {
		return fmt.Errorf("bench-out: compiled (%d ns/op) slower than tree walker (%d ns/op) on the largest instance",
			last.compiled, last.tree)
	}
	fmt.Printf("  largest instance: compiled %d ns/op vs tree-walk %d ns/op (%.1fx)\n",
		last.compiled, last.tree, float64(last.tree)/float64(max64(last.compiled, 1)))
	if err := runBenchCyclic(&entries, quick); err != nil {
		return err
	}
	if err := runBenchDelta(&entries, quick); err != nil {
		return err
	}
	if err := runBenchBitmap(&entries, quick, compiledNs); err != nil {
		return err
	}
	doc := benchDocOut{
		Meta: benchMeta{
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		},
		Entries: entries,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %d entries to %s\n", len(entries), path)
	return nil
}

func benchKey(src string, blocks int) string {
	return fmt.Sprintf("%s@%d", src, blocks)
}

// cyclicBenchQuery is the non-FO workload: the paper's q1 mutual-
// negation shape, where the planner's matching decider replaces naive
// repair enumeration (docs/PLANNER.md).
const cyclicBenchQuery = "R(x | y), !S(y | x)"

// cyclicBenchSizes stay small because the naive baseline enumerates up
// to 2^(2·blocks) repairs per evaluation.
func cyclicBenchSizes(quick bool) []int {
	if quick {
		return []int{2, 4, 6}
	}
	return []int{4, 8, 10}
}

// runBenchCyclic appends the cyclic-query records: matching decider vs
// naive repair enumeration on the same instances, cross-checked for
// agreement before timing. The run fails if the decider is not faster
// than enumeration on the largest instance.
func runBenchCyclic(entries *[]benchEntry, quick bool) error {
	q := parse.MustQuery(cyclicBenchQuery)
	plan := planner.New(q, false)
	if plan.Class != planner.ClassMatching {
		return fmt.Errorf("bench-out: %s classified %s, want %s", cyclicBenchQuery, plan.Class, planner.ClassMatching)
	}
	type largest struct{ naive, matching int64 }
	var last largest
	for _, blocks := range cyclicBenchSizes(quick) {
		rng := rand.New(rand.NewSource(int64(5000 + blocks)))
		opt := gen.DBOptions{BlocksPerRelation: blocks, MaxBlockSize: 2,
			DomainPerVariable: blocks, ConstantBias: 0.7}
		d := gen.Database(rng, q, opt)
		declareAll(d, q)
		want := naive.IsCertain(q, d)
		got, ok := plan.Certain(d.Interned())
		if !ok || got != want {
			return fmt.Errorf("bench-out: matching decider (certain=%v ok=%v) disagrees with naive (%v) on %s blocks=%d",
				got, ok, want, cyclicBenchQuery, blocks)
		}
		runs := []struct {
			engine string
			body   func()
		}{
			{"naive-repair", func() { naive.IsCertain(q, d) }},
			{"matching", func() { plan.Certain(d.Interned()) }},
		}
		for _, r := range runs {
			body := r.body
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					body()
				}
			})
			e := benchEntry{
				Experiment:  "E16",
				Query:       cyclicBenchQuery,
				Blocks:      blocks,
				Facts:       d.Size(),
				Engine:      r.engine,
				NsPerOp:     res.NsPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			}
			*entries = append(*entries, e)
			fmt.Printf("  %-45s blocks=%-5d %-17s %10d ns/op %6d allocs/op\n",
				cyclicBenchQuery, blocks, r.engine, e.NsPerOp, e.AllocsPerOp)
			switch r.engine {
			case "naive-repair":
				last.naive = e.NsPerOp
			case "matching":
				last.matching = e.NsPerOp
			}
		}
	}
	if last.matching >= last.naive {
		return fmt.Errorf("bench-out: matching decider (%d ns/op) not faster than naive enumeration (%d ns/op) on the largest cyclic instance",
			last.matching, last.naive)
	}
	fmt.Printf("  largest cyclic instance: matching %d ns/op vs naive %d ns/op (%.1fx)\n",
		last.matching, last.naive, float64(last.naive)/float64(max64(last.matching, 1)))
	return nil
}

// declareAll mirrors core.withQueryRels for the tree-walk measurements:
// the compiled path treats undeclared relations as empty, the tree
// walker needs them declared.
func declareAll(d *db.Database, q schema.Query) {
	for _, a := range q.Atoms() {
		if d.Relation(a.Rel) == nil {
			d.MustDeclare(a.Rel, a.Arity(), a.Key)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
