package main

import (
	"fmt"
	"math/rand"
	"time"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/direct"
	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/matching"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/reduction"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
	"cqa/internal/special"
)

// runE1 regenerates Figure 1: the inconsistent girls-boys database, the
// certainty answer for q1, and the repair corresponding to the matching
// Alice–George / Maria–Bob.
func runE1(bool) error {
	d := parse.MustDatabase(`
		R(Alice | Bob)
		R(Alice | George)
		R(Maria | Bob)
		R(Maria | John)
		S(Bob | Alice)
		S(Bob | Maria)
		S(George | Alice)
		S(George | Maria)
	`)
	q1 := reduction.Q1()
	certain := naive.IsCertain(q1, d)
	fmt.Printf("facts=%d blocks=8 repairs=%.0f\n", d.Size(), d.NumRepairs())
	fmt.Printf("CERTAINTY(q1) = %v   (paper: false — a matching exists)\n", certain)
	if certain {
		return fmt.Errorf("expected q1 not certain on Figure 1")
	}
	r := naive.FalsifyingRepair(q1, d)
	fmt.Println("falsifying repair (the matching Alice–George, Maria–Bob):")
	fmt.Print(r)
	want := parse.MustDatabase(`
		R(Alice | George)
		R(Maria | Bob)
		S(Bob | Maria)
		S(George | Alice)
	`)
	for _, f := range want.AllFacts() {
		if !r.Has(f) {
			// Another falsifying repair is acceptable; just verify it
			// really falsifies.
			if naive.SatQuery(q1, r) {
				return fmt.Errorf("reported repair does not falsify q1")
			}
			break
		}
	}
	return nil
}

// runE2 prints the classification table for every example query of the
// paper and checks it against the paper's stated verdicts.
func runE2(bool) error {
	rows := []struct {
		name, src string
		wantFO    string // "FO", "not-FO", "out-of-scope"
	}{
		{"q0 (Sec 5.1)", "R(x | y), S(y | x)", "not-FO"},
		{"q1 (Ex 1.1)", "R(x | y), !S(y | x)", "not-FO"},
		{"q2 (Sec 5.1)", "R(x, y), !S(x | y), !T(y | x)", "not-FO"},
		{"q3 (Ex 4.2/4.5)", "P(x | y), !N('c' | y)", "FO"},
		{"qHall ℓ=3 (Ex 6.12)", "S(x), !N1('c' | x), !N2('c' | x), !N3('c' | x)", "FO"},
		{"mayors q1 (Ex 4.6)", "Mayor(t | p), !Lives(p | t)", "not-FO"},
		{"mayors q2 (Ex 4.6)", "Likes(p, t), !Lives(p | t), !Mayor(t | p)", "not-FO"},
		{"mayors qa (Ex 4.6)", "Lives(p | t), !Born(p | t), !Likes(p, t)", "FO"},
		{"mayors qb (Ex 4.6)", "Likes(p, t), !Born(p | t), !Lives(p | t)", "FO"},
		{"q4 (Ex 7.1)", "X(x), Y(y), !R(x | y), !S(y | x)", "out-of-scope"},
		{"Ex 3.2 (wg, not guarded)", "R(x | y, z, u), S(y | w, z), T(x | u, w), !N(x | y, z, u, w)", "not-FO"},
	}
	fmt.Printf("%-26s %-9s %-8s %-8s %-13s %s\n",
		"query", "guarded", "weakly", "acyclic", "verdict", "hardness/cycle")
	for _, row := range rows {
		cls, err := core.Classify(parse.MustQuery(row.src))
		if err != nil {
			return fmt.Errorf("%s: %w", row.name, err)
		}
		extra := ""
		if cls.Verdict == core.VerdictNotFO {
			extra = fmt.Sprintf("%s (%s ⇄ %s)", cls.Hardness, cls.CycleF, cls.CycleG)
		}
		fmt.Printf("%-26s %-9v %-8v %-8v %-13s %s\n",
			row.name, cls.Guarded, cls.WeaklyGuarded, cls.Acyclic, cls.Verdict, extra)
		if string(cls.Verdict) != row.wantFO {
			return fmt.Errorf("%s: verdict %s, paper says %s", row.name, cls.Verdict, row.wantFO)
		}
	}
	return nil
}

// runE3 regenerates Figure 2 (the q_Hall rewriting for ℓ=3), checks the
// S-COVERING equivalence on random instances, and reports the exponential
// growth of the rewriting size.
func runE3(quick bool) error {
	f3, err := rewrite.Rewrite(reduction.QHall(3))
	if err != nil {
		return err
	}
	fmt.Println("Figure 2 (consistent FO rewriting of q_Hall, ℓ=3):")
	fmt.Println(" ", f3)

	fmt.Println("rewriting shape by ℓ (paper: size exponential in the query size):")
	fmt.Println("  ℓ    AST nodes            qrank  alternations")
	maxL := 7
	if quick {
		maxL = 5
	}
	prev := 0
	for l := 1; l <= maxL; l++ {
		fl, err := rewrite.Rewrite(reduction.QHall(l))
		if err != nil {
			return err
		}
		size := fo.Size(fl)
		ratio := ""
		if prev > 0 {
			ratio = fmt.Sprintf("(×%.2f)", float64(size)/float64(prev))
		}
		fmt.Printf("  %d    %-9d %-9s  %-5d  %d\n",
			l, size, ratio, fo.QuantifierRank(fl), fo.AlternationDepth(fl))
		prev = size
	}

	trials := 300
	if quick {
		trials = 50
	}
	rng := rand.New(rand.NewSource(6))
	agree := 0
	for i := 0; i < trials; i++ {
		l := 1 + rng.Intn(3)
		inst := gen.SCovering(rng, 1+rng.Intn(4), l, 0.5)
		d := reduction.SCoveringToQHall(inst)
		q := reduction.QHall(l)
		fq, err := rewrite.Rewrite(q)
		if err != nil {
			return err
		}
		if err := parse.DeclareQueryRelations(d, q); err != nil {
			return err
		}
		certain := fo.Eval(d, fq)
		if certain == !inst.Solvable() {
			agree++
		}
	}
	fmt.Printf("Hall equivalence (rewriting vs Hopcroft–Karp): %d/%d agree\n", agree, trials)
	if agree != trials {
		return fmt.Errorf("equivalence violated")
	}
	return nil
}

// runE4 validates Lemma 5.2 and times certainty engines against direct
// matching on the reduced databases.
func runE4(quick bool) error {
	q1 := reduction.Q1()
	rng := rand.New(rand.NewSource(42))
	sizes := []int{2, 3, 4, 5, 6}
	trialsPer := 40
	if quick {
		sizes = []int{2, 3, 4}
		trialsPer = 10
	}
	fmt.Println("  n   trials  agree  naive-certainty   Hopcroft–Karp")
	for _, n := range sizes {
		agree := 0
		var tNaive, tHK time.Duration
		for i := 0; i < trialsPer; i++ {
			g := gen.Bipartite(rng, n, 0.35)
			d, err := reduction.BPMToQ1(g)
			if err != nil {
				return err
			}
			t0 := time.Now()
			certain := naive.IsCertain(q1, d)
			tNaive += time.Since(t0)
			t0 = time.Now()
			pm := matching.HasPerfectMatching(g)
			tHK += time.Since(t0)
			if certain == !pm {
				agree++
			}
		}
		fmt.Printf("  %d   %-6d  %d/%d  %12s  %12s\n",
			n, trialsPer, agree, trialsPer, tNaive/time.Duration(trialsPer), tHK/time.Duration(trialsPer))
		if agree != trialsPer {
			return fmt.Errorf("n=%d: Lemma 5.2 equivalence violated", n)
		}
	}
	return nil
}

// runE5 validates Lemma 5.3 on random two-component forests.
func runE5(quick bool) error {
	q2 := reduction.Q2()
	rng := rand.New(rand.NewSource(7))
	trials := 60
	if quick {
		trials = 15
	}
	agree := 0
	for i := 0; i < trials; i++ {
		inst := gen.UFA(rng, 2+rng.Intn(3), 2+rng.Intn(3))
		d, err := reduction.UFAToQ2(inst)
		if err != nil {
			return err
		}
		connected := inst.Graph.Connected(inst.U, inst.V)
		if naive.IsCertain(q2, d) == connected {
			agree++
		}
	}
	fmt.Printf("UFA instances: %d/%d agree (connected ⟺ certain)\n", agree, trials)
	if agree != trials {
		return fmt.Errorf("Lemma 5.3 equivalence violated")
	}
	return nil
}

// runE6 validates the q4 decision procedure of Example 7.1 against naive
// enumeration and reports the Figure 3 outcome.
func runE6(quick bool) error {
	// Figure 3 itself.
	d := figure3()
	fmt.Printf("Figure 3 (m=3, n=2; 3·2 > 3+2): CERTAINTY(q4) = %v (paper: true)\n", q4Certain(d))
	if !q4Certain(d) {
		return fmt.Errorf("Figure 3 must be certain")
	}

	q := parse.MustQuery("X(x), Y(y), !R(x | y), !S(y | x)")
	rng := rand.New(rand.NewSource(99))
	trials := 500
	if quick {
		trials = 100
	}
	agree := 0
	for trial := 0; trial < trials; trial++ {
		dd := randQ4DB(rng)
		if q4Certain(dd) == naive.IsCertain(q, dd) {
			agree++
		}
	}
	fmt.Printf("random q4 databases: %d/%d agree with repair enumeration\n", agree, trials)
	if agree != trials {
		return fmt.Errorf("q4 special procedure diverges from naive")
	}
	return nil
}

// runE7 is the scaling experiment behind the FO claim: on growing
// inconsistent databases, the rewriting evaluation and Algorithm 1 remain
// fast while repair enumeration explodes exponentially.
func runE7(quick bool) error {
	q := parse.MustQuery("Lives(p | t), !Born(p | t), !Likes(p, t)")
	f, err := rewrite.Rewrite(q)
	if err != nil {
		return err
	}
	sizes := []int{4, 8, 12, 64, 256, 1024}
	if quick {
		sizes = []int{4, 8, 64}
	}
	fmt.Println("  blocks/rel  facts  repairs    rewriting    Algorithm1   naive")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		opt := gen.DBOptions{BlocksPerRelation: n, MaxBlockSize: 2, DomainPerVariable: n, ConstantBias: 0.7}
		d := gen.Database(rng, q, opt)

		t0 := time.Now()
		ansF := fo.Eval(d, f)
		tF := time.Since(t0)

		t0 = time.Now()
		ansD, err := direct.IsCertain(q, d)
		if err != nil {
			return err
		}
		tD := time.Since(t0)

		naiveCol := "      —"
		if n <= 12 {
			t0 = time.Now()
			ansN := naive.IsCertain(q, d)
			tN := time.Since(t0)
			naiveCol = fmt.Sprint(tN)
			if ansN != ansF {
				return fmt.Errorf("n=%d: rewriting %v != naive %v", n, ansF, ansN)
			}
		}
		if ansF != ansD {
			return fmt.Errorf("n=%d: rewriting %v != Algorithm 1 %v", n, ansF, ansD)
		}
		fmt.Printf("  %-10d  %-5d  %-9.3g  %-11s  %-11s  %s\n",
			n, d.Size(), d.NumRepairs(), tF, tD, naiveCol)
	}
	return nil
}

// runE8 sweeps random weakly-guarded queries, reports the dichotomy
// statistics, and cross-validates the three engines on the FO side.
func runE8(quick bool) error {
	rng := rand.New(rand.NewSource(2025))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	nQueries := 300
	validate := 60
	if quick {
		nQueries = 60
		validate = 15
	}
	foN, lHard, nlHard := 0, 0, 0
	validated := 0
	for i := 0; i < nQueries; i++ {
		q := gen.Query(rng, opts)
		cls, err := core.Classify(q)
		if err != nil {
			return err
		}
		switch cls.Verdict {
		case core.VerdictFO:
			foN++
			if validated < validate {
				validated++
				d := gen.Database(rng, q, dbOpts)
				want := naive.IsCertain(q, d)
				gotR := fo.Eval(ensureRels(d, q), cls.Rewriting)
				gotD, err := direct.IsCertain(q, ensureRels(d, q))
				if err != nil {
					return err
				}
				if gotR != want || gotD != want {
					return fmt.Errorf("engines disagree on %s", q)
				}
			}
		case core.VerdictNotFO:
			if cls.Hardness == "NL-hard" {
				nlHard++
			} else {
				lHard++
			}
		default:
			return fmt.Errorf("weakly-guarded query %s out of scope", q)
		}
	}
	fmt.Printf("random weakly-guarded queries: %d\n", nQueries)
	fmt.Printf("  FO (acyclic attack graph):    %d (%.0f%%)\n", foN, 100*float64(foN)/float64(nQueries))
	fmt.Printf("  not in FO, L-hard witness:    %d\n", lHard)
	fmt.Printf("  not in FO, NL-hard witness:   %d\n", nlHard)
	fmt.Printf("engine cross-validation on FO queries: %d/%d agree\n", validated, validated)
	return nil
}

// runE9 measures attack-graph construction cost against query size
// (polynomial, as Theorem 4.3's decidability note requires) and
// re-validates the Θ-reductions.
func runE9(quick bool) error {
	fmt.Println("attack-graph construction time by atom count (chain queries):")
	fmt.Println("  atoms  time/op")
	sizes := []int{2, 4, 8, 16, 32}
	if quick {
		sizes = []int{2, 4, 8}
	}
	for _, n := range sizes {
		q := chainQuery(n)
		reps := 200
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			cls, err := core.Classify(q)
			if err != nil {
				return err
			}
			_ = cls
		}
		fmt.Printf("  %-5d  %s\n", n, time.Since(t0)/time.Duration(reps))
	}

	// Θ-reduction answer preservation (Lemmas 5.6 and 5.7).
	rng := rand.New(rand.NewSource(17))
	trials := 80
	if quick {
		trials = 20
	}
	q56 := parse.MustQuery("R0(x | y), !S0(y | x), A(x, y)")
	agree56 := 0
	for i := 0; i < trials; i++ {
		src := randQ1Instance(rng)
		dst, err := reduction.Lemma56(q56, "R0", "S0", src)
		if err != nil {
			return err
		}
		if naive.IsCertain(reduction.Q1(), src) == naive.IsCertain(q56, dst) {
			agree56++
		}
	}
	q57 := parse.MustQuery("P(x, y), !R0(x | y), !S0(y | x)")
	agree57 := 0
	for i := 0; i < trials; i++ {
		src := randQ2Instance(rng)
		dst, err := reduction.Lemma57(q57, "R0", "S0", src)
		if err != nil {
			return err
		}
		if naive.IsCertain(reduction.Q2Appendix(), src) == naive.IsCertain(q57, dst) {
			agree57++
		}
	}
	fmt.Printf("Θ-reduction Lemma 5.6: %d/%d preserved\n", agree56, trials)
	fmt.Printf("Θ-reduction Lemma 5.7: %d/%d preserved\n", agree57, trials)
	if agree56 != trials || agree57 != trials {
		return fmt.Errorf("Θ-reduction violated")
	}
	return nil
}

// ---- helpers ----

func figure3() *db.Database { return special.Figure3Database() }

func randQ4DB(rng *rand.Rand) *db.Database {
	d := db.New()
	d.MustDeclare("X", 1, 1)
	d.MustDeclare("Y", 1, 1)
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 2, 1)
	xs := []string{"a", "b", "c"}[:1+rng.Intn(3)]
	ys := []string{"p", "q", "r"}[:1+rng.Intn(3)]
	for _, a := range xs {
		d.MustInsert(db.F("X", a))
	}
	for _, b := range ys {
		d.MustInsert(db.F("Y", b))
	}
	for i := 0; i < 5; i++ {
		if rng.Intn(2) == 0 {
			d.MustInsert(db.F("R", xs[rng.Intn(len(xs))], ys[rng.Intn(len(ys))]))
		}
		if rng.Intn(2) == 0 {
			d.MustInsert(db.F("S", ys[rng.Intn(len(ys))], xs[rng.Intn(len(xs))]))
		}
	}
	return d
}

func randQ1Instance(rng *rand.Rand) *db.Database {
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 2, 1)
	as := []string{"a1", "a2"}
	bs := []string{"b1", "b2"}
	for i := 0; i < 4; i++ {
		if rng.Intn(2) == 0 {
			d.MustInsert(db.F("R", as[rng.Intn(2)], bs[rng.Intn(2)]))
		}
		if rng.Intn(2) == 0 {
			d.MustInsert(db.F("S", bs[rng.Intn(2)], as[rng.Intn(2)]))
		}
	}
	return d
}

func randQ2Instance(rng *rand.Rand) *db.Database {
	d := db.New()
	d.MustDeclare("T", 2, 2)
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 2, 1)
	as := []string{"a1", "a2"}
	bs := []string{"b1", "b2"}
	for i := 0; i < 3; i++ {
		if rng.Intn(2) == 0 {
			d.MustInsert(db.F("T", as[rng.Intn(2)], bs[rng.Intn(2)]))
		}
		if rng.Intn(2) == 0 {
			d.MustInsert(db.F("R", as[rng.Intn(2)], bs[rng.Intn(2)]))
		}
		if rng.Intn(2) == 0 {
			d.MustInsert(db.F("S", bs[rng.Intn(2)], as[rng.Intn(2)]))
		}
	}
	return d
}

func q4Certain(d *db.Database) bool { return special.Q4Certain(d) }

// chainQuery builds R1(x1|x2), R2(x2|x3), …, with a final negated atom.
func chainQuery(n int) schema.Query {
	var lits []schema.Literal
	for i := 0; i < n; i++ {
		lits = append(lits, schema.Pos(schema.NewAtom(
			fmt.Sprintf("R%d", i), 1,
			schema.Var(fmt.Sprintf("x%d", i)), schema.Var(fmt.Sprintf("x%d", i+1)))))
	}
	lits = append(lits, schema.Neg(schema.NewAtom("N", 1,
		schema.Var("x0"), schema.Var("x1"))))
	return schema.NewQuery(lits...)
}

func ensureRels(d *db.Database, q schema.Query) *db.Database {
	if err := parse.DeclareQueryRelations(d, q); err != nil {
		panic(err)
	}
	return d
}
