// E17: incremental certain-answer maintenance. A fleet of ground-key
// registrations watches one relation while a write stream toggles
// random blocks; the delta manager must re-evaluate only the
// registrations whose support contains a dirty block, where the naive
// baseline re-checks every registration on every change. The BENCH
// record carries the re-evaluation counts, and the run fails unless
// delta re-evaluates at least 10× fewer registrations than re-check-all
// at the largest instance — the `make bench-smoke` gate for the delta
// subsystem.
package main

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/delta"
	"cqa/internal/parse"
	"cqa/internal/store"
)

// deltaBenchSizes is the registration count per instance; blocks scale
// with it (one watched block per registration).
func deltaBenchSizes(quick bool) []int {
	if quick {
		return []int{8, 32}
	}
	return []int{32, 128, 512}
}

func deltaBenchWrites(quick bool) int {
	if quick {
		return 80
	}
	return 200
}

func runBenchDelta(entries *[]benchEntry, quick bool) error {
	writes := deltaBenchWrites(quick)
	var lastDelta, lastNaive int64
	for _, regs := range deltaBenchSizes(quick) {
		seed := db.New()
		seed.MustDeclare("R", 2, 1)
		for i := 0; i < regs; i++ {
			seed.MustInsert(db.F("R", fmt.Sprintf("k%d", i), "v0"))
		}
		// An unwatched block pre-seeds "v1" into the dictionary, so the
		// first toggle below is not an unknown value forcing a one-off
		// re-evaluation storm across every registration.
		seed.MustInsert(db.F("R", "kseed", "v1"))

		name := fmt.Sprintf("bench-delta-%d", regs)
		st := store.NewMem(name, seed)
		mgr := delta.New(delta.Options{})
		st.SetOnApply(func(c store.Change) {
			snap := st.Snapshot()
			mgr.Apply(name, c, func() *db.Database { return snap.DB })
		})

		preps := make([]*core.Prepared, regs)
		watches := make([]*delta.Watch, regs)
		snap := st.Snapshot()
		for i := 0; i < regs; i++ {
			q := parse.MustQuery(fmt.Sprintf("R('k%d' | 'v0')", i))
			p, err := core.Prepare(q)
			if err != nil {
				return fmt.Errorf("bench-out: prepare reg %d: %v", i, err)
			}
			preps[i] = p
			w, _, err := mgr.Register(name, q.Signature(), p, delta.Snapshot{DB: snap.DB, Version: snap.Version})
			if err != nil {
				return fmt.Errorf("bench-out: register reg %d: %v", i, err)
			}
			watches[i] = w
		}

		// The write stream: toggle R(k_j | v1) for random j. Every write
		// is effective (one dirty block) and flips exactly registration
		// j's verdict between {v0} (true) and {v0,v1} (false).
		rng := rand.New(rand.NewSource(int64(9000 + regs)))
		present := make([]bool, regs)
		t0 := time.Now()
		for wi := 0; wi < writes; wi++ {
			j := rng.Intn(regs)
			f := db.F("R", fmt.Sprintf("k%d", j), "v1")
			var err error
			if present[j] {
				_, err = st.Delete(f)
			} else {
				_, err = st.Insert(f)
			}
			if err != nil {
				return fmt.Errorf("bench-out: write %d: %v", wi, err)
			}
			present[j] = !present[j]
		}
		mgr.Quiesce(name)
		elapsed := time.Since(t0)

		// Self-validation: every maintained verdict equals a fresh
		// evaluation on the final snapshot.
		final := st.Snapshot().DB
		for i, w := range watches {
			if w.State().Verdict != preps[i].Certain(final) {
				return fmt.Errorf("bench-out: delta verdict for registration %d diverged from fresh evaluation", i)
			}
		}

		skipped, reevaled, flipped := mgr.Counters()
		mgr.Close()
		deltaReevals := int64(reevaled + flipped)
		naiveReevals := int64(writes) * int64(regs)
		if int64(skipped)+deltaReevals != naiveReevals {
			return fmt.Errorf("bench-out: delta decisions %d skipped + %d re-evaluated do not cover %d changes × %d registrations",
				skipped, deltaReevals, writes, regs)
		}

		// The naive baseline: re-check every registration once per
		// change, timed as one sweep over the fleet.
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, p := range preps {
					p.Certain(final)
				}
			}
		})

		workload := fmt.Sprintf("%d ground-key registrations", regs)
		for _, e := range []benchEntry{
			{
				Experiment: "E17", Query: workload, Blocks: regs + 1, Facts: final.Size(),
				Engine:  "delta-maintain",
				NsPerOp: elapsed.Nanoseconds() / int64(writes),
				Reevals: deltaReevals,
			},
			{
				Experiment: "E17", Query: workload, Blocks: regs + 1, Facts: final.Size(),
				Engine:      "recheck-all",
				NsPerOp:     res.NsPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				Reevals:     naiveReevals,
			},
		} {
			*entries = append(*entries, e)
			fmt.Printf("  %-45s writes=%-4d %-17s %10d ns/change %8d reeval(s)\n",
				workload, writes, e.Engine, e.NsPerOp, e.Reevals)
		}
		lastDelta, lastNaive = deltaReevals, naiveReevals
	}
	if lastNaive < 10*lastDelta {
		return fmt.Errorf("bench-out: delta re-evaluated %d registrations vs %d for re-check-all on the largest instance — below the 10x gate",
			lastDelta, lastNaive)
	}
	fmt.Printf("  largest delta instance: %d re-evaluations vs %d naive (%.1fx fewer)\n",
		lastDelta, lastNaive, float64(lastNaive)/float64(max64(lastDelta, 1)))
	return nil
}
