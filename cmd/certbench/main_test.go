package main

import "testing"

// Every experiment self-checks its cross-validations and returns an
// error on any mismatch, so running them in quick mode is a meaningful
// regression test of the whole reproduction.
func TestExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short mode")
	}
	for _, e := range experiments {
		e := e
		t.Run(e.id, func(t *testing.T) {
			if err := e.run(true); err != nil {
				t.Fatalf("%s: %v", e.id, err)
			}
		})
	}
}
