// Command certbench runs the full experiment suite E1–E14 described in
// DESIGN.md and prints the tables recorded in EXPERIMENTS.md. Every
// experiment is deterministic (fixed seeds) and validates itself: a
// failed cross-check aborts with a non-zero exit code.
//
// Usage:
//
//	certbench [-run E1,E3] [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
)

var experiments = []struct {
	id   string
	desc string
	run  func(quick bool) error
}{
	{"E1", "Figure 1 / Example 1.1: girls-boys database and the matching repair", runE1},
	{"E2", "classification of every example query in the paper", runE2},
	{"E3", "q_Hall: Figure 2 rewriting, Hall equivalence, rewriting growth", runE3},
	{"E4", "Lemma 5.2: BPM reduction agreement and engine timings", runE4},
	{"E5", "Lemma 5.3: UFA reduction agreement", runE5},
	{"E6", "Example 7.1: q4 decision procedure vs repair enumeration", runE6},
	{"E7", "scaling: rewriting and Algorithm 1 vs naive enumeration", runE7},
	{"E8", "random-query sweep: dichotomy statistics and engine agreement", runE8},
	{"E9", "attack-graph cost vs query size; Θ-reduction preservation", runE9},
	{"E10", "extensions: SQL end-to-end, free variables, reifiability, ♯CERTAINTY", runE10},
	{"E11", "P vs FO: matching-based PTIME deciders for q1 and q_Hall", runE11},
	{"E12", "serving engine: plan cache, parallel evaluation, batch worker pool", runE12},
	{"E13", "serving daemon: in-process HTTP server under load, self-validated answers, ops surfaces", runE13},
	{"E14", "mutable store: daemon under read/write load, contemporaneous-snapshot validation, incremental invalidation", runE14},
}

func main() {
	runFlag := flag.String("run", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "smaller instances for a fast smoke run")
	benchOut := flag.String("bench-out", "", "measure compiled vs interpreted evaluation and write BENCH JSON to this path (skips the experiment suite)")
	flag.Parse()

	if *benchOut != "" {
		fmt.Println("==== bench-out: compiled vs interpreted evaluation ====")
		if err := runBenchOut(*benchOut, *quick); err != nil {
			log.Fatalf("bench-out FAILED: %v", err)
		}
		return
	}

	want := map[string]bool{}
	if *runFlag != "" {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	failed := false
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.desc)
		if err := e.run(*quick); err != nil {
			log.Printf("%s FAILED: %v", e.id, err)
			failed = true
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
