package main

import (
	"fmt"
	"math/rand"
	"time"

	"cqa/internal/db"
	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/reduction"
	"cqa/internal/rewrite"
	"cqa/internal/special"
)

// runE11 exhibits the gap between FO and P inside the not-in-FO side of
// the dichotomy: CERTAINTY(q1) has no consistent first-order rewriting
// (Lemma 5.2), yet it is decidable in polynomial time by bipartite
// matching over the mutual graph; naive enumeration is exponential.
// Likewise CERTAINTY(q_Hall) has a rewriting, but one of exponential
// size; the matching decider and the rewriting agree while scaling very
// differently in ℓ.
func runE11(quick bool) error {
	q1 := reduction.Q1()
	rng := rand.New(rand.NewSource(11))

	// Agreement + scaling for q1.
	sizes := []int{3, 4, 5, 6}
	trialsPer := 30
	if quick {
		sizes = []int{3, 4}
		trialsPer = 10
	}
	fmt.Println("CERTAINTY(q1) — matching decider vs repair enumeration:")
	fmt.Println("  n   trials  agree  matching      naive")
	for _, n := range sizes {
		agree := 0
		var tM, tN time.Duration
		for i := 0; i < trialsPer; i++ {
			d := randomQ1DB(rng, n)
			t0 := time.Now()
			got := special.Q1Certain(d)
			tM += time.Since(t0)
			t0 = time.Now()
			want := naive.IsCertain(q1, d)
			tN += time.Since(t0)
			if got == want {
				agree++
			}
		}
		fmt.Printf("  %d   %-6d  %d/%d  %-12s  %s\n",
			n, trialsPer, agree, trialsPer,
			tM/time.Duration(trialsPer), tN/time.Duration(trialsPer))
		if agree != trialsPer {
			return fmt.Errorf("n=%d: matching decider diverged", n)
		}
	}
	// Larger scale, matching decider only (enumeration is hopeless).
	big := randomQ1DB(rng, 200)
	t0 := time.Now()
	ans := special.Q1Certain(big)
	fmt.Printf("  n=200 (%.3g repairs): matching decider answers %v in %s\n",
		big.NumRepairs(), ans, time.Since(t0))

	// q_Hall: matching decider vs the (exponential-size) rewriting.
	fmt.Println("CERTAINTY(q_Hall) — matching decider vs FO rewriting evaluation:")
	fmt.Println("  ℓ   rewriting-size  agree  matching      rewriting-eval")
	maxL := 5
	trials := 40
	if quick {
		maxL = 3
		trials = 10
	}
	for l := 1; l <= maxL; l++ {
		q := reduction.QHall(l)
		f, err := rewrite.Rewrite(q)
		if err != nil {
			return err
		}
		agree := 0
		var tM, tR time.Duration
		for i := 0; i < trials; i++ {
			inst := gen.SCovering(rng, 1+rng.Intn(5), l, 0.4)
			d := reduction.SCoveringToQHall(inst)
			if err := parse.DeclareQueryRelations(d, q); err != nil {
				return err
			}
			t0 := time.Now()
			got, err := special.QHallCertain(d, l)
			if err != nil {
				return err
			}
			tM += time.Since(t0)
			t0 = time.Now()
			want := fo.Eval(d, f)
			tR += time.Since(t0)
			if got == want {
				agree++
			}
		}
		fmt.Printf("  %d   %-14d  %d/%d  %-12s  %s\n",
			l, fo.Size(f), agree, trials,
			tM/time.Duration(trials), tR/time.Duration(trials))
		if agree != trials {
			return fmt.Errorf("ℓ=%d: q_Hall deciders diverged", l)
		}
	}
	return nil
}

func randomQ1DB(rng *rand.Rand, n int) *db.Database {
	d := db.New()
	d.MustDeclare("R", 2, 1)
	d.MustDeclare("S", 2, 1)
	for i := 0; i < n; i++ {
		a := fmt.Sprintf("a%d", i)
		for j := 0; j < 2; j++ {
			b := fmt.Sprintf("b%d", rng.Intn(n))
			d.MustInsert(db.F("R", a, b))
			if rng.Intn(2) == 0 {
				d.MustInsert(db.F("S", b, a))
			}
		}
	}
	return d
}
