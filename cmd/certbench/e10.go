package main

import (
	"fmt"
	"math/rand"

	"cqa/internal/attack"
	"cqa/internal/core"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/reduction"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
	"cqa/internal/sqlexec"
	"cqa/internal/sqlgen"
)

// runE10 exercises the extension features built on top of the paper:
//
//   - SQL end-to-end: the generated single SQL query, executed by the
//     in-repo SQL engine, equals repair enumeration;
//   - free variables: certain answers of q1(x) on the Figure 1 database;
//   - reifiability: unattacked = reifiable (Corollary 6.9 and
//     Proposition 7.2, both directions checked empirically);
//   - ♯CERTAINTY: repair counting on the Figure 1 database.
func runE10(quick bool) error {
	// SQL end-to-end.
	trials := 120
	if quick {
		trials = 30
	}
	rng := rand.New(rand.NewSource(10))
	opts := gen.DefaultQueryOptions()
	dbOpts := gen.DefaultDBOptions()
	agree := 0
	done := 0
	for done < trials {
		q := gen.Query(rng, opts)
		f, err := rewrite.Rewrite(q)
		if err != nil {
			continue
		}
		sql, err := sqlgen.Translate(f, sqlgen.Options{})
		if err != nil {
			return err
		}
		d := gen.Database(rng, q, dbOpts)
		got, err := sqlexec.Run(sql, d)
		if err != nil {
			return err
		}
		if got == naive.IsCertain(q, d) {
			agree++
		}
		done++
	}
	fmt.Printf("SQL end-to-end (rewrite → translate → execute): %d/%d agree with naive\n", agree, trials)
	if agree != trials {
		return fmt.Errorf("SQL execution diverged")
	}

	// Free variables: the Boolean q1 is not FO, but q1(x) is; its certain
	// answers on Figure 1 are the girls that stay unmatched in every
	// repair (none, for the full Figure 1).
	q1 := reduction.Q1()
	d := parse.MustDatabase(`
		R(Alice | Bob)
		R(Alice | George)
		R(Maria | Bob)
		R(Maria | John)
		S(Bob | Alice)
		S(Bob | Maria)
		S(George | Alice)
		S(George | Maria)
	`)
	if _, err := rewrite.Rewrite(q1); err == nil {
		return fmt.Errorf("Boolean q1 unexpectedly has a rewriting")
	}
	if _, err := rewrite.RewriteFree(q1, []string{"x"}); err != nil {
		return fmt.Errorf("q1(x) should be FO: %w", err)
	}
	answers, err := core.CertainAnswers(q1, []string{"x"}, d)
	if err != nil {
		return err
	}
	fmt.Printf("q1(x) on Figure 1: FO with x free; certain answers = %v\n", answers)

	// Reifiability (both directions of the characterization).
	checked, witnesses := 0, 0
	for checked < 40 {
		q := gen.Query(rng, opts)
		rv, err := core.ReifiableVars(q)
		if err != nil {
			continue
		}
		checked++
		g := attack.New(q)
		attacked := make(schema.VarSet)
		for _, rel := range g.Atoms() {
			attacked.AddAll(g.AttackedVars(rel))
		}
		for _, x := range attacked.Sorted() {
			if rv.Has(x) {
				return fmt.Errorf("attacked variable %s reported reifiable in %s", x, q)
			}
			wdb, err := reduction.Prop72Witness(q, x, "α", "β")
			if err != nil {
				return err
			}
			if !naive.IsCertain(q, wdb) {
				return fmt.Errorf("Prop 7.2 witness broken for %s in %s", x, q)
			}
			witnesses++
		}
	}
	fmt.Printf("reifiability: %d random queries checked, %d Proposition 7.2 witnesses validated\n",
		checked, witnesses)

	// ♯CERTAINTY on Figure 1: exact count and Monte-Carlo estimate.
	sat, total := naive.CountSatisfyingRepairs(q1, d)
	est := naive.EstimateFrequency(q1, d, 2000, rand.New(rand.NewSource(16)))
	fmt.Printf("♯CERTAINTY(q1) on Figure 1: %d of %d repairs satisfy q1 (frequency %.3f, Monte-Carlo ≈ %.3f)\n",
		sat, total, naive.Frequency(q1, d), est)
	if sat == total {
		return fmt.Errorf("Figure 1 should have a falsifying repair")
	}
	return nil
}
