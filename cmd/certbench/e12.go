package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/engine"
	"cqa/internal/gen"
	"cqa/internal/parse"
)

// runE12 measures the serving architecture of internal/engine: repeated
// CERTAINTY traffic answered (a) cold — Classify + Rewrite per request,
// (b) through the LRU plan cache, and (c) through the cache with the
// parallel evaluation hot path; plus a batch of independent checks run
// sequentially vs on the worker pool. Every mode is validated against
// mode (a) — any disagreement fails the experiment.
func runE12(quick bool) error {
	repeats := 200
	batchItems := 16
	blocks := 16
	batchBlocks := 192
	chainLens := []int{8, 10, 12, 14}
	if quick {
		repeats = 40
		batchItems = 8
		blocks = 8
		batchBlocks = 64
		chainLens = []int{6, 8}
	}
	// Chain queries make preparation expensive (the attack graph and
	// rewriting grow with the query), which is the plan cache's target:
	// query-only work repeated on every request.
	queries := make([]string, len(chainLens))
	for i, n := range chainLens {
		queries[i] = chainQuery(n).String()
	}
	rng := rand.New(rand.NewSource(12))

	// One modest database per query, so the cold runs are dominated by
	// preparation, the cached runs by evaluation.
	dbs := make(map[string]*dbWithAnswer, len(queries))
	for _, src := range queries {
		q := parse.MustQuery(src)
		d := gen.Database(rng, q, gen.DBOptions{BlocksPerRelation: blocks, MaxBlockSize: 2, DomainPerVariable: blocks / 2, ConstantBias: 0.7})
		dbs[src] = &dbWithAnswer{db: d}
	}

	// (a) cold: every request pays classification + rewriting.
	t0 := time.Now()
	for i := 0; i < repeats; i++ {
		src := queries[i%len(queries)]
		q := parse.MustQuery(src)
		ans, err := core.Certain(q, dbs[src].db, core.EngineAuto)
		if err != nil {
			return err
		}
		if i < len(queries) {
			dbs[src].want = ans
		} else if ans != dbs[src].want {
			return fmt.Errorf("cold run unstable on %s", src)
		}
	}
	tCold := time.Since(t0)

	// (b) cached: the plan cache absorbs the query-only work.
	cached := engine.New(engine.Options{})
	t0 = time.Now()
	for i := 0; i < repeats; i++ {
		src := queries[i%len(queries)]
		ans, err := cached.Certain(parse.MustQuery(src), dbs[src].db)
		if err != nil {
			return err
		}
		if ans != dbs[src].want {
			return fmt.Errorf("cached engine disagrees on %s", src)
		}
	}
	tCached := time.Since(t0)

	// (c) cached + parallel evaluation hot path.
	par := engine.New(engine.Options{ParallelEval: true})
	t0 = time.Now()
	for i := 0; i < repeats; i++ {
		src := queries[i%len(queries)]
		ans, err := par.Certain(parse.MustQuery(src), dbs[src].db)
		if err != nil {
			return err
		}
		if ans != dbs[src].want {
			return fmt.Errorf("parallel engine disagrees on %s", src)
		}
	}
	tParallel := time.Since(t0)

	fmt.Printf("repeated traffic (%d requests over %d queries, %d blocks/rel):\n", repeats, len(queries), blocks)
	fmt.Printf("  cold (Classify+Rewrite per request)  %v\n", tCold)
	fmt.Printf("  plan cache                           %v   (%.1fx)\n", tCached, ratio(tCold, tCached))
	fmt.Printf("  plan cache + parallel eval           %v   (%.1fx)\n", tParallel, ratio(tCold, tParallel))
	fmt.Printf("  engine stats: %s\n", cached.Stats())

	// Batch: the same independent checks, sequential loop vs worker pool,
	// on databases large enough that per-item evaluation dominates.
	q := parse.MustQuery("Lives(p | t), !Born(p | t), !Likes(p, t)")
	items := make([]engine.Item, batchItems)
	for i := range items {
		d := gen.Database(rng, q, gen.DBOptions{BlocksPerRelation: batchBlocks, MaxBlockSize: 2, DomainPerVariable: batchBlocks / 2, ConstantBias: 0.7})
		items[i] = engine.Item{Query: q, DB: d}
	}
	p, err := cached.Prepare(q)
	if err != nil {
		return err
	}
	// Warm the databases' memoized read-path state (active domains) so
	// the sequential/batch comparison measures evaluation, not cache
	// fills that only the first mode would pay.
	for _, it := range items {
		p.Certain(it.DB)
	}
	seq := make([]bool, len(items))
	t0 = time.Now()
	for i, it := range items {
		seq[i] = p.Certain(it.DB)
	}
	tSeq := time.Since(t0)
	t0 = time.Now()
	results := cached.CertainBatch(context.Background(), items)
	tBatch := time.Since(t0)
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("batch item %d: %w", i, r.Err)
		}
		if r.Certain != seq[i] {
			return fmt.Errorf("batch item %d disagrees with sequential run", i)
		}
	}
	fmt.Printf("batch of %d independent checks:\n", batchItems)
	fmt.Printf("  sequential loop   %v\n", tSeq)
	fmt.Printf("  CertainBatch      %v   (%.1fx)\n", tBatch, ratio(tSeq, tBatch))
	return nil
}

type dbWithAnswer struct {
	db   *db.Database
	want bool
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}
