// E18: the bitmap-vectorized evaluator and the shared-pass batch.
//
// Part one re-times the E15 instances on the compiled-bitmap engine
// (word-parallel quantifier sweeps over IDSet membership words) and
// fails if it is slower than the scalar compiled evaluator on the
// largest instance — the bitmap regression gate of `make bench-smoke`.
//
// Part two measures engine.CertainBatch on a duplicate-heavy 64-item
// batch (4 distinct queries × 16 copies, one snapshot) with and without
// shared-pass grouping, and fails if grouping does not win.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"cqa/internal/engine"
	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
)

// batchBenchQueries are the distinct queries of the E18 batch workload;
// they share the first bench query's relations so one generated
// instance serves all of them.
var batchBenchQueries = []string{
	"Lives(p | t), !Born(p | t), !Likes(p, t)",
	"Lives(p | t), !Born(p | t)",
	"Born(p | t), !Likes(p, t)",
	"Lives(p | t), !Likes(t, p)",
}

const batchBenchDup = 16 // copies of each distinct query in the batch

func runBenchBitmap(entries *[]benchEntry, quick bool, compiledNs map[string]int64) error {
	sizes := benchSizes(quick)
	largestSize := sizes[len(sizes)-1]
	for _, src := range benchQueries {
		q := parse.MustQuery(src)
		f, err := rewrite.Rewrite(q)
		if err != nil {
			return fmt.Errorf("bench-out: %s has no rewriting: %v", src, err)
		}
		prog, err := fo.Compile(f)
		if err != nil {
			return fmt.Errorf("bench-out: compile %s: %v", src, err)
		}
		if !prog.HasBitmap() {
			return fmt.Errorf("bench-out: %s compiled without a bitmap lowering", src)
		}
		for _, blocks := range sizes {
			// Same seed as E15: identical instances, so the compiled
			// baselines recorded there are directly comparable.
			rng := rand.New(rand.NewSource(int64(blocks)))
			opt := gen.DBOptions{BlocksPerRelation: blocks, MaxBlockSize: 2,
				DomainPerVariable: blocks, ConstantBias: 0.7}
			d := gen.Database(rng, q, opt)
			declareAll(d, q)
			want := fo.Eval(d, f)
			bound := prog.Bind(d.Interned())
			if bound.EvalBitmap() != want {
				return fmt.Errorf("bench-out: bitmap evaluator disagrees with tree walker on %s blocks=%d", src, blocks)
			}
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					bound.EvalBitmap()
				}
			})
			e := benchEntry{
				Experiment:  "E18",
				Query:       src,
				Blocks:      blocks,
				Facts:       d.Size(),
				Engine:      "compiled-bitmap",
				NsPerOp:     res.NsPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			}
			*entries = append(*entries, e)
			fmt.Printf("  %-45s blocks=%-5d %-17s %10d ns/op %6d allocs/op\n",
				src, blocks, e.Engine, e.NsPerOp, e.AllocsPerOp)
			if blocks == largestSize {
				base, ok := compiledNs[benchKey(src, blocks)]
				if !ok {
					return fmt.Errorf("bench-out: no compiled baseline recorded for %s blocks=%d", src, blocks)
				}
				if e.NsPerOp > base {
					return fmt.Errorf("bench-out: compiled-bitmap (%d ns/op) slower than compiled (%d ns/op) on %s blocks=%d",
						e.NsPerOp, base, src, blocks)
				}
				fmt.Printf("  largest instance: compiled-bitmap %d ns/op vs compiled %d ns/op (%.1fx)\n",
					e.NsPerOp, base, float64(base)/float64(max64(e.NsPerOp, 1)))
			}
		}
	}
	return runBenchBatchShared(entries, largestSize)
}

// runBenchBatchShared times the duplicate-heavy batch on two engines
// that differ only in Options.DisableBatchSharing.
func runBenchBatchShared(entries *[]benchEntry, blocks int) error {
	rng := rand.New(rand.NewSource(int64(blocks)))
	opt := gen.DBOptions{BlocksPerRelation: blocks, MaxBlockSize: 2,
		DomainPerVariable: blocks, ConstantBias: 0.7}
	base := parse.MustQuery(batchBenchQueries[0])
	d := gen.Database(rng, base, opt)
	for _, src := range batchBenchQueries {
		declareAll(d, parse.MustQuery(src))
	}
	items := make([]engine.Item, len(batchBenchQueries)*batchBenchDup)
	for i := range items {
		items[i] = engine.Item{Query: parse.MustQuery(batchBenchQueries[i%len(batchBenchQueries)]), DB: d}
	}
	ctx := context.Background()
	label := fmt.Sprintf("batch(%dq x %d)", len(batchBenchQueries), batchBenchDup)

	shared := engine.New(engine.Options{Workers: 4})
	defer shared.Close()
	perItem := engine.New(engine.Options{Workers: 4, DisableBatchSharing: true})
	defer perItem.Close()
	sRes := shared.CertainBatch(ctx, items)
	pRes := perItem.CertainBatch(ctx, items)
	for i := range items {
		if sRes[i].Err != nil || pRes[i].Err != nil || sRes[i].Certain != pRes[i].Certain {
			return fmt.Errorf("bench-out: shared batch disagrees with per-item at item %d: %+v vs %+v",
				i, sRes[i], pRes[i])
		}
	}

	type pair struct{ shared, perItem int64 }
	var last pair
	runs := []struct {
		engine string
		eng    *engine.Engine
	}{
		{"batch-shared", shared},
		{"batch-per-item", perItem},
	}
	for _, r := range runs {
		eng := r.eng
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.CertainBatch(ctx, items)
			}
		})
		e := benchEntry{
			Experiment:  "E18",
			Query:       label,
			Blocks:      blocks,
			Facts:       d.Size(),
			Engine:      r.engine,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		*entries = append(*entries, e)
		fmt.Printf("  %-45s blocks=%-5d %-17s %10d ns/op %6d allocs/op\n",
			label, blocks, r.engine, e.NsPerOp, e.AllocsPerOp)
		switch r.engine {
		case "batch-shared":
			last.shared = e.NsPerOp
		case "batch-per-item":
			last.perItem = e.NsPerOp
		}
	}
	if last.shared >= last.perItem {
		return fmt.Errorf("bench-out: shared-pass batch (%d ns/op) not faster than per-item loop (%d ns/op) at batch %d",
			last.shared, last.perItem, len(items))
	}
	fmt.Printf("  batch %d: shared %d ns/op vs per-item %d ns/op (%.1fx)\n",
		len(items), last.shared, last.perItem, float64(last.perItem)/float64(max64(last.shared, 1)))
	return nil
}
