package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"cqa/internal/engine"
	"cqa/internal/gen"
	"cqa/internal/loadgen"
	"cqa/internal/metrics"
	"cqa/internal/parse"
	"cqa/internal/server"
)

// runE13 exercises the serving daemon end to end: an in-process cqad
// server (internal/server over internal/engine) is driven by the
// cqaload library (internal/loadgen) with a classify/certain/batch mix,
// every served answer is validated against core.Certain ground truth,
// and the operational surfaces (/metrics, /debug/vars, /v1/stats) are
// checked for the counters the run must have produced. Admission
// control is then demonstrated by shrinking the in-flight bound.
func runE13(quick bool) error {
	clients, requests := 8, 40
	queries, dbsPer := 8, 4
	if quick {
		clients, requests = 4, 15
		queries, dbsPer = 4, 3
	}

	eng := engine.New(engine.Options{})
	defer eng.Close()
	srv := server.New(server.Options{Engine: eng})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	w := loadgen.NewWorkload(13, loadgen.WorkloadOptions{Queries: queries, DBsPerQuery: dbsPer})
	// Random weakly-guarded queries skew acyclic; append a known hard
	// query so the naive-fallback serving path is exercised under load.
	hard := parse.MustQuery("R(x | y), !S(y | x)")
	hq := loadgen.WorkloadQuery{Query: hard, Source: hard.String()}
	hrng := rand.New(rand.NewSource(1313))
	for i := 0; i < dbsPer; i++ {
		d := gen.Database(hrng, hard, gen.DefaultDBOptions())
		hq.DBs = append(hq.DBs, d)
		hq.Facts = append(hq.Facts, d.String())
	}
	w.Queries = append(w.Queries, hq)
	queries++
	fo, nonFO := 0, 0
	for _, wq := range w.Queries {
		// The workload mixes rewriting-served and naive-fallback queries;
		// count them for the table.
		resp, err := http.Post(ts.URL+"/v1/classify", "application/json",
			strings.NewReader(fmt.Sprintf(`{"query": %q}`, wq.Source)))
		if err != nil {
			return err
		}
		var cls server.ClassifyResponse
		err = json.NewDecoder(resp.Body).Decode(&cls)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if cls.Verdict == "FO" {
			fo++
		} else {
			nonFO++
		}
	}

	rep, err := loadgen.Run(context.Background(), ts.URL, w, loadgen.Options{
		Clients:  clients,
		Requests: requests,
		Seed:     131,
		Mix:      loadgen.Mix{Classify: 1, Certain: 6, Batch: 2},
	})
	if err != nil {
		return err
	}
	if rep.Failures > 0 {
		for _, c := range rep.Calls {
			if c.Err != "" {
				return fmt.Errorf("request failed: %s q%d: %s", c.Kind, c.QueryIdx, c.Err)
			}
		}
	}
	checked, err := loadgen.Validate(rep, w)
	if err != nil {
		return fmt.Errorf("served answers disagree with core.Certain: %w", err)
	}

	fmt.Printf("in-process server under load (%d clients × %d requests, %d queries [%d FO, %d not], %d dbs each):\n",
		clients, requests, queries, fo, nonFO, dbsPer)
	fmt.Printf("  %s\n", strings.ReplaceAll(rep.String(), "\n", "\n  "))
	fmt.Printf("  self-validation: %d served answers agree with core.Certain\n", checked)

	// The operational surfaces must reflect the traffic.
	want := float64(rep.Total + queries) // loadgen requests + the classify warm-up
	stats, vars, metricsText, err := scrapeOps(ts.URL)
	if err != nil {
		return err
	}
	if got := stats.Server["requests_total"].(float64); got != want {
		return fmt.Errorf("/v1/stats requests_total = %v, want %v", got, want)
	}
	if stats.Engine.CacheHits == 0 || stats.Engine.CacheHitRate <= 0 {
		return fmt.Errorf("/v1/stats shows no cache hits under repeated traffic: %+v", stats.Engine)
	}
	cqad, ok := vars["cqad"].(map[string]any)
	if !ok {
		return fmt.Errorf("/debug/vars lacks the cqad registry")
	}
	lat, ok := cqad["request_latency"].(map[string]any)
	if !ok || lat["count"].(float64) != want || lat["p99_ns"].(float64) <= 0 {
		return fmt.Errorf("/debug/vars latency histogram wrong: %v", cqad["request_latency"])
	}
	if err := metrics.LintPrometheus(metricsText); err != nil {
		return fmt.Errorf("/metrics exposition does not lint: %w", err)
	}
	exp, err := metrics.ParsePrometheus(metricsText)
	if err != nil {
		return err
	}
	if got, ok := exp.Value("requests_total"); !ok || got != want {
		return fmt.Errorf("/metrics requests_total = %v (present=%v), want %v", got, ok, want)
	}
	if got, ok := exp.Value("request_latency_seconds_count"); !ok || got != want {
		return fmt.Errorf("/metrics request_latency_seconds_count = %v (present=%v), want %v", got, ok, want)
	}
	if got, ok := exp.Value("engine_cache_hit_rate"); !ok || got <= 0 {
		return fmt.Errorf("/metrics engine_cache_hit_rate = %v (present=%v), want > 0", got, ok)
	}
	fmt.Printf("  ops surfaces: requests_total=%v cache_hit_rate=%.3f p99=%s (consistent across /v1/stats, /debug/vars, /metrics)\n",
		want, stats.Engine.CacheHitRate, time.Duration(int64(lat["p99_ns"].(float64))))

	// Admission control: hold the only slot of a one-slot server with a
	// request whose body arrives slowly, and watch concurrent traffic be
	// shed with 429 + Retry-After while the in-flight request still
	// completes correctly once its body lands.
	tight := server.New(server.Options{Engine: eng, MaxInFlight: 1})
	tts := httptest.NewServer(tight.Handler())
	defer tts.Close()

	pr, pw := io.Pipe()
	slowReq, err := http.NewRequest("POST", tts.URL+"/v1/certain", pr)
	if err != nil {
		return err
	}
	slowDone := make(chan *http.Response, 1)
	go func() {
		resp, err := http.DefaultClient.Do(slowReq)
		if err != nil {
			slowDone <- nil
			return
		}
		slowDone <- resp
	}()
	if _, err := pw.Write([]byte(`{"query": "R(x | y)", `)); err != nil {
		return err
	}
	// Wait until the slow request has been admitted (it holds the slot as
	// soon as a concurrent request starts seeing 429).
	shed := 0
	deadline := time.Now().Add(10 * time.Second)
	for shed == 0 && time.Now().Before(deadline) {
		st, _, err := quickCertain(tts.URL)
		if err != nil {
			return err
		}
		if st == http.StatusTooManyRequests {
			shed++
		}
	}
	if shed == 0 {
		return fmt.Errorf("one-slot server never shed load while the slot was held")
	}
	var retryAfter string
	for i := 0; i < 9; i++ {
		st, ra, err := quickCertain(tts.URL)
		if err != nil {
			return err
		}
		if st != http.StatusTooManyRequests {
			return fmt.Errorf("held server answered %d, want 429", st)
		}
		shed++
		retryAfter = ra
	}
	pw.Write([]byte(`"facts": "R(a | 1)\nR(a | 2)"}`))
	pw.Close()
	slow := <-slowDone
	if slow == nil || slow.StatusCode != http.StatusOK {
		return fmt.Errorf("held request did not complete cleanly: %v", slow)
	}
	var slowOut server.CertainResponse
	err = json.NewDecoder(slow.Body).Decode(&slowOut)
	slow.Body.Close()
	if err != nil || !slowOut.Certain {
		return fmt.Errorf("held request answer wrong: %+v err %v", slowOut, err)
	}
	rejected := tight.Registry().Counter("rejected_total").Value()
	if rejected < uint64(shed) {
		return fmt.Errorf("clients saw %d rejections but the server counted %d", shed, rejected)
	}
	// The freed slot serves again.
	if st, _, err := quickCertain(tts.URL); err != nil || st != http.StatusOK {
		return fmt.Errorf("after release: status %d err %v", st, err)
	}
	fmt.Printf("admission control (max-inflight=1): %d requests shed with 429 (Retry-After: %s) while the slot was held; held request completed correctly and service resumed\n",
		shed, retryAfter)
	return nil
}

// quickCertain fires one small /v1/certain request and reports its
// status and Retry-After header.
func quickCertain(base string) (int, string, error) {
	resp, err := http.Post(base+"/v1/certain", "application/json",
		strings.NewReader(`{"query": "R(x | y)", "facts": "R(a | 1)\nR(a | 2)"}`))
	if err != nil {
		return 0, "", err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil
}

// scrapeOps fetches the three operational endpoints.
func scrapeOps(base string) (server.StatsResponse, map[string]any, string, error) {
	var stats server.StatsResponse
	var vars map[string]any
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return stats, nil, "", err
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		return stats, nil, "", err
	}
	resp, err = http.Get(base + "/debug/vars")
	if err != nil {
		return stats, nil, "", err
	}
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		return stats, nil, "", err
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return stats, nil, "", err
	}
	line, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return stats, nil, "", err
	}
	return stats, vars, string(line), nil
}
