// Command cqa is the command-line front end of the library.
//
// Usage:
//
//	cqa classify '<query>'            classification under Theorem 4.3
//	cqa attack   '<query>'            attack-graph details (F⊕, edges, witnesses)
//	cqa rewrite  '<query>'            consistent first-order rewriting
//	cqa sql      '<query>'            the rewriting as a single SQL query
//	cqa eval     '<query>' <db-file>... answer CERTAINTY(q) on databases
//	    -engine auto|rewriting|direct|naive   (default auto)
//	    -parallel    fan evaluation across workers (engine auto)
//	    -cache       route through the plan-cache engine
//	    -stats       print engine stats to stderr
//	Several database files run as one engine batch on a worker pool.
//	Exit status: 0 when the query is certain on every database, 1 when
//	it is not certain on some database, 2 on usage errors, and 3 on
//	parse/classify/database errors — scripts can branch on certainty
//	without parsing the output.
//
// Query syntax: R(x | y), !S(y | x) — key positions before '|', '!' for
// negation, 'quoted' constants. Database files hold one fact per line:
// R(a | b), with '#' comments.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/engine"
	"cqa/internal/fo"
	"cqa/internal/parse"
	"cqa/internal/schema"
	"cqa/internal/sqlgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "classify":
		err = classify(args, os.Stdout)
	case "attack":
		err = attackCmd(args, os.Stdout)
	case "rewrite":
		err = rewriteCmd(args, os.Stdout)
	case "sql":
		err = sqlCmd(args, os.Stdout)
	case "eval":
		// eval has its own exit-code contract (see usage): scripts branch
		// on certainty without parsing output, and distinguish "the query
		// is not certain" from "the invocation was broken".
		os.Exit(evalExitCode(evalCmd(args, os.Stdin, os.Stdout)))
	case "answers":
		err = answersCmd(args, os.Stdin, os.Stdout, os.Stderr)
	case "explain":
		err = explainCmd(args, os.Stdin, os.Stdout)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "cqa: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqa:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cqa classify '<query>'
  cqa attack   '<query>'
  cqa rewrite  '<query>'
  cqa sql      '<query>'
  cqa eval     [-engine auto|rewriting|direct|naive] [-parallel] [-cache] [-stats] '<query>' <db-file|-> [db-file...]
               exit status: 0 certain on every database, 1 not certain on
               some database, 2 usage error, 3 parse/classify/database error
  cqa answers  -free x,y '<query>' <db-file|->
  cqa explain  '<query>' <db-file|->       trace Algorithm 1`)
}

func parseQueryArg(args []string) (schema.Query, error) {
	if len(args) != 1 {
		return schema.Query{}, fmt.Errorf("expected exactly one query argument")
	}
	return parse.Query(args[0])
}

func classify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit machine-readable JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q, err := parseQueryArg(fs.Args())
	if err != nil {
		return err
	}
	cls, err := core.Classify(q)
	if err != nil {
		return err
	}
	if *asJSON {
		return writeClassificationJSON(out, cls)
	}
	fmt.Fprintln(out, "query:          ", q)
	fmt.Fprintln(out, "guarded:        ", cls.Guarded)
	fmt.Fprintln(out, "weakly-guarded: ", cls.WeaklyGuarded)
	fmt.Fprintln(out, "attack edges:")
	for _, e := range cls.Graph.Edges() {
		fmt.Fprintf(out, "  %s -> %s\n", e[0], e[1])
	}
	fmt.Fprintln(out, "acyclic:        ", cls.Acyclic)
	fmt.Fprintln(out, "verdict:        ", cls.Verdict)
	switch cls.Verdict {
	case core.VerdictFO:
		fmt.Fprintln(out, "rewriting:      ", cls.Rewriting)
	case core.VerdictNotFO:
		fmt.Fprintf(out, "hardness:        %s (2-cycle %s ⇄ %s, %d negated)\n",
			cls.Hardness, cls.CycleF, cls.CycleG, cls.CycleNegated)
	case core.VerdictOutOfScope:
		fmt.Fprintln(out, "note: negation is not weakly-guarded and no unconditional")
		fmt.Fprintln(out, "hardness lemma applies; Theorem 4.3 does not decide this query.")
	}
	return nil
}

func attackCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("attack", flag.ContinueOnError)
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q, err := parseQueryArg(fs.Args())
	if err != nil {
		return err
	}
	cls, err := core.Classify(q)
	if err != nil {
		return err
	}
	g := cls.Graph
	if *dot {
		fmt.Fprint(out, g.DOT())
		return nil
	}
	for _, rel := range g.Atoms() {
		fmt.Fprintf(out, "%s:\n", rel)
		fmt.Fprintf(out, "  F⊕            = %s\n", g.Oplus(rel))
		fmt.Fprintf(out, "  attacked vars = %s\n", g.AttackedVars(rel))
		for _, to := range g.Atoms() {
			if !g.Attacks(rel, to) {
				continue
			}
			toAtom, _ := q.AtomByRel(to)
			for _, kv := range toAtom.KeyVars().Sorted() {
				if u, wit, ok := g.AttackVarWitness(rel, kv); ok {
					fmt.Fprintf(out, "  %s -> %s via %s|%s ⇝ %s, witness %v\n", rel, to, rel, u, kv, wit)
					break
				}
			}
		}
	}
	return nil
}

func rewriteCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rewrite", flag.ContinueOnError)
	latex := fs.Bool("latex", false, "emit LaTeX math source")
	prenex := fs.Bool("prenex", false, "emit the prenex normal form")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q, err := parseQueryArg(fs.Args())
	if err != nil {
		return err
	}
	cls, err := core.Classify(q)
	if err != nil {
		return err
	}
	if cls.Verdict != core.VerdictFO {
		return fmt.Errorf("no consistent first-order rewriting: verdict is %s", cls.Verdict)
	}
	f := cls.Rewriting
	if *prenex {
		f = fo.Prenex(f)
	}
	if *latex {
		fmt.Fprintln(out, fo.LaTeX(f))
		return nil
	}
	fmt.Fprintln(out, f)
	return nil
}

func sqlCmd(args []string, out io.Writer) error {
	q, err := parseQueryArg(args)
	if err != nil {
		return err
	}
	cls, err := core.Classify(q)
	if err != nil {
		return err
	}
	if cls.Verdict != core.VerdictFO {
		return fmt.Errorf("no consistent first-order rewriting: verdict is %s", cls.Verdict)
	}
	sql, err := sqlgen.Translate(cls.Rewriting, sqlgen.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, sql)
	return nil
}

// usageError marks an eval failure as the caller's invocation being
// wrong (bad flags, missing arguments), as opposed to bad input data.
type usageError struct{ error }

// evalExitCode maps an evalCmd outcome onto the documented exit-code
// contract: 0 certain everywhere, 1 not certain somewhere, 2 usage
// error, 3 parse/classify/database error.
func evalExitCode(certain bool, err error) int {
	switch {
	case err == nil && certain:
		return 0
	case err == nil:
		return 1
	case errors.Is(err, flag.ErrHelp):
		return 0
	default:
		fmt.Fprintln(os.Stderr, "cqa:", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		return 3
	}
}

func evalCmd(args []string, stdin io.Reader, out io.Writer) (bool, error) {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	engineName := fs.String("engine", "auto", "auto|rewriting|direct|naive")
	parallel := fs.Bool("parallel", false, "fan evaluation across GOMAXPROCS workers (engine auto only)")
	cache := fs.Bool("cache", false, "route through the plan-cache engine (engine auto only)")
	stats := fs.Bool("stats", false, "print engine cache/worker stats to stderr (implies -cache)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return false, err
		}
		return false, usageError{err}
	}
	rest := fs.Args()
	if len(rest) < 2 {
		return false, usageError{fmt.Errorf("eval needs a query and at least one database file (or - for stdin)")}
	}
	q, err := parse.Query(rest[0])
	if err != nil {
		return false, err
	}
	dbs := make([]*db.Database, 0, len(rest)-1)
	for _, name := range rest[1:] {
		var src []byte
		if name == "-" {
			src, err = io.ReadAll(stdin)
		} else {
			src, err = os.ReadFile(name)
		}
		if err != nil {
			return false, err
		}
		d, err := parse.Database(string(src))
		if err != nil {
			return false, err
		}
		if err := parse.DeclareQueryRelations(d, q); err != nil {
			return false, err
		}
		dbs = append(dbs, d)
	}
	useEngine := *parallel || *cache || *stats || len(dbs) > 1
	if useEngine && *engineName != "auto" {
		return false, usageError{fmt.Errorf("-parallel/-cache/-stats and multiple databases require -engine auto")}
	}
	if !useEngine {
		eng, err := engineByName(*engineName)
		if err != nil {
			return false, usageError{err}
		}
		ans, err := core.Certain(q, dbs[0], eng)
		if err != nil {
			return false, err
		}
		fmt.Fprintln(out, ans)
		return ans, nil
	}
	e := engine.New(engine.Options{ParallelEval: *parallel})
	defer e.Close()
	all := true
	if len(dbs) == 1 {
		ans, err := e.Certain(q, dbs[0])
		if err != nil {
			return false, err
		}
		fmt.Fprintln(out, ans)
		all = ans
	} else {
		items := make([]engine.Item, len(dbs))
		for i, d := range dbs {
			items[i] = engine.Item{Query: q, DB: d}
		}
		for i, r := range e.CertainBatch(context.Background(), items) {
			if r.Err != nil {
				return false, fmt.Errorf("%s: %w", rest[1+i], r.Err)
			}
			fmt.Fprintf(out, "%s: %v\n", rest[1+i], r.Certain)
			all = all && r.Certain
		}
	}
	if *stats {
		fmt.Fprintln(os.Stderr, e.Stats())
	}
	return all, nil
}

func answersCmd(args []string, stdin io.Reader, out, errw io.Writer) error {
	fs := flag.NewFlagSet("answers", flag.ContinueOnError)
	freeList := fs.String("free", "", "comma-separated free variables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 || *freeList == "" {
		return fmt.Errorf("answers needs -free, a query, and a database file (or - for stdin)")
	}
	free := strings.Split(*freeList, ",")
	for i := range free {
		free[i] = strings.TrimSpace(free[i])
	}
	q, err := parse.Query(rest[0])
	if err != nil {
		return err
	}
	var src []byte
	if rest[1] == "-" {
		src, err = io.ReadAll(stdin)
	} else {
		src, err = os.ReadFile(rest[1])
	}
	if err != nil {
		return err
	}
	d, err := parse.Database(string(src))
	if err != nil {
		return err
	}
	if err := parse.DeclareQueryRelations(d, q); err != nil {
		return err
	}
	answers, err := core.CertainAnswers(q, free, d)
	if err != nil {
		return err
	}
	for _, a := range answers {
		fmt.Fprintln(out, strings.Join(a, ", "))
	}
	fmt.Fprintf(errw, "%d certain answer(s)\n", len(answers))
	return nil
}

func engineByName(name string) (core.Engine, error) {
	switch name {
	case "auto":
		return core.EngineAuto, nil
	case "rewriting":
		return core.EngineRewriting, nil
	case "direct":
		return core.EngineDirect, nil
	case "naive":
		return core.EngineNaive, nil
	default:
		return 0, fmt.Errorf("unknown engine %q", name)
	}
}
