package main

import (
	"encoding/json"
	"io"

	"cqa/internal/core"
	"cqa/internal/fo"
)

// classificationJSON is the machine-readable form of `cqa classify -json`.
type classificationJSON struct {
	Query         string      `json:"query"`
	Guarded       bool        `json:"guarded"`
	WeaklyGuarded bool        `json:"weaklyGuarded"`
	AttackEdges   [][2]string `json:"attackEdges"`
	Acyclic       bool        `json:"acyclic"`
	Verdict       string      `json:"verdict"`
	Hardness      string      `json:"hardness,omitempty"`
	Cycle         []string    `json:"cycle,omitempty"`
	Rewriting     string      `json:"rewriting,omitempty"`
	Size          int         `json:"size,omitempty"`
}

func writeClassificationJSON(out io.Writer, cls *core.Classification) error {
	j := classificationJSON{
		Query:         cls.Query.String(),
		Guarded:       cls.Guarded,
		WeaklyGuarded: cls.WeaklyGuarded,
		AttackEdges:   cls.Graph.Edges(),
		Acyclic:       cls.Acyclic,
		Verdict:       string(cls.Verdict),
		Hardness:      cls.Hardness,
	}
	if j.AttackEdges == nil {
		j.AttackEdges = [][2]string{}
	}
	if cls.CycleF != "" {
		j.Cycle = []string{cls.CycleF, cls.CycleG}
	}
	if cls.Rewriting != nil {
		j.Rewriting = cls.Rewriting.String()
		j.Size = fo.Size(cls.Rewriting)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}
