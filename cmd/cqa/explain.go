package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"cqa/internal/direct"
	"cqa/internal/parse"
)

// explainCmd runs Algorithm 1 with a step-by-step derivation trace.
func explainCmd(args []string, stdin io.Reader, out io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("explain needs a query and a database file (or - for stdin)")
	}
	q, err := parse.Query(args[0])
	if err != nil {
		return err
	}
	var src []byte
	if args[1] == "-" {
		src, err = io.ReadAll(stdin)
	} else {
		src, err = os.ReadFile(args[1])
	}
	if err != nil {
		return err
	}
	d, err := parse.Database(string(src))
	if err != nil {
		return err
	}
	if err := parse.DeclareQueryRelations(d, q); err != nil {
		return err
	}
	ans, err := direct.IsCertainTraced(q, d, func(depth int, msg string) {
		fmt.Fprintf(out, "%s%s\n", strings.Repeat("  ", depth), msg)
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "certain:", ans)
	return nil
}
