package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDB(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "facts.db")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestClassifyCommand(t *testing.T) {
	var out bytes.Buffer
	if err := classify([]string{"P(x | y), !N('c' | y)"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"verdict:         FO", "weakly-guarded:  true", "N -> P", "rewriting:"} {
		if !strings.Contains(s, frag) {
			t.Errorf("classify output lacks %q:\n%s", frag, s)
		}
	}
}

func TestClassifyHardQuery(t *testing.T) {
	var out bytes.Buffer
	if err := classify([]string{"R(x | y), !S(y | x)"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "NL-hard") {
		t.Errorf("classify output lacks hardness:\n%s", out.String())
	}
}

func TestClassifyOutOfScope(t *testing.T) {
	var out bytes.Buffer
	if err := classify([]string{"X(x), Y(y), !R(x | y), !S(y | x)"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Theorem 4.3 does not decide") {
		t.Errorf("classify output lacks out-of-scope note:\n%s", out.String())
	}
}

func TestClassifyArgErrors(t *testing.T) {
	var out bytes.Buffer
	if err := classify(nil, &out); err == nil {
		t.Error("no arguments should fail")
	}
	if err := classify([]string{"bad("}, &out); err == nil {
		t.Error("parse error should surface")
	}
}

func TestAttackCommand(t *testing.T) {
	var out bytes.Buffer
	if err := attackCmd([]string{"P(x | y), !N('c' | y)"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"N:", "F⊕", "witness"} {
		if !strings.Contains(s, frag) {
			t.Errorf("attack output lacks %q:\n%s", frag, s)
		}
	}
}

func TestRewriteCommand(t *testing.T) {
	var out bytes.Buffer
	if err := rewriteCmd([]string{"P(x | y), !N('c' | y)"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "∀") {
		t.Errorf("rewriting output looks wrong: %s", out.String())
	}
	if err := rewriteCmd([]string{"R(x | y), !S(y | x)"}, &out); err == nil {
		t.Error("non-FO query should fail")
	}
}

func TestSQLCommand(t *testing.T) {
	var out bytes.Buffer
	if err := sqlCmd([]string{"P(x | y), !N('c' | y)"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "WITH adom(v) AS") {
		t.Errorf("SQL output looks wrong: %s", out.String())
	}
}

func TestEvalCommand(t *testing.T) {
	path := writeDB(t, "R(a | 1)\nR(a | 2)\n")
	for _, engine := range []string{"auto", "rewriting", "direct", "naive"} {
		var out bytes.Buffer
		certain, err := evalCmd([]string{"-engine", engine, "R(x | y)", path}, strings.NewReader(""), &out)
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		if !certain || strings.TrimSpace(out.String()) != "true" {
			t.Errorf("engine %s: certain=%v output %q, want true", engine, certain, out.String())
		}
	}
	var out bytes.Buffer
	certain, err := evalCmd([]string{"R(x | '1')", "-"}, strings.NewReader("R(a | 1)\nR(a | 2)\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if certain || strings.TrimSpace(out.String()) != "false" {
		t.Errorf("stdin eval certain=%v output %q, want false", certain, out.String())
	}
}

func TestEvalExitCodes(t *testing.T) {
	path := writeDB(t, "R(a | 1)\nR(a | 2)\n")
	empty := writeDB(t, "R(b | 1)\n")
	cases := []struct {
		name  string
		args  []string
		stdin string
		want  int
	}{
		{"certain", []string{"R(x | y)", path}, "", 0},
		{"not certain", []string{"R(x | '1')", path}, "", 1},
		{"batch with one uncertain db", []string{"R(x | '1')", path, empty}, "", 1},
		{"missing db arg", []string{"R(x | y)"}, "", 2},
		{"bad flag", []string{"-bogus", "R(x | y)", path}, "", 2},
		{"unknown engine", []string{"-engine", "bogus", "R(x | y)", path}, "", 2},
		{"flag conflict", []string{"-engine", "naive", "-parallel", "R(x | y)", path}, "", 2},
		{"query parse error", []string{"bad(", path}, "", 3},
		{"missing db file", []string{"R(x | y)", "/nonexistent/path"}, "", 3},
		{"bad db contents", []string{"R(x | y)", "-"}, "not a fact", 3},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		got := evalExitCode(evalCmd(tc.args, strings.NewReader(tc.stdin), &out))
		if got != tc.want {
			t.Errorf("%s: exit code = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestEvalEngineFlags(t *testing.T) {
	path := writeDB(t, "R(a | 1)\nR(a | 2)\n")
	for _, flags := range [][]string{{"-cache"}, {"-parallel"}, {"-cache", "-parallel"}} {
		var out bytes.Buffer
		args := append(append([]string{}, flags...), "R(x | y)", path)
		certain, err := evalCmd(args, strings.NewReader(""), &out)
		if err != nil {
			t.Fatalf("%v: %v", flags, err)
		}
		if !certain || strings.TrimSpace(out.String()) != "true" {
			t.Errorf("%v: output %q, want true", flags, out.String())
		}
	}
	// Multiple database files answer as one engine batch, one line each.
	path2 := writeDB(t, "R(b | 1)\n")
	var out bytes.Buffer
	certain, err := evalCmd([]string{"R(x | y)", path, path2}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if !certain || len(lines) != 2 || !strings.HasSuffix(lines[0], "true") || !strings.HasSuffix(lines[1], "true") {
		t.Errorf("batch output wrong: %q", out.String())
	}
	// Engine flags are incompatible with explicit non-auto engines.
	if _, err := evalCmd([]string{"-engine", "naive", "-parallel", "R(x | y)", path}, strings.NewReader(""), &out); err == nil {
		t.Error("-parallel with -engine naive should fail")
	}
}

func TestEvalErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := evalCmd([]string{"R(x | y)"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing db argument should fail")
	}
	if _, err := evalCmd([]string{"-engine", "bogus", "R(x | y)", "-"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown engine should fail")
	}
	if _, err := evalCmd([]string{"R(x | y)", "/nonexistent/path"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing file should fail")
	}
}

func TestAnswersCommand(t *testing.T) {
	db := "R(Alice | Bob)\nR(Maria | John)\nS(Bob | Alice)\n"
	var out, errw bytes.Buffer
	err := answersCmd([]string{"-free", "x", "R(x | y), !S(y | x)", "-"},
		strings.NewReader(db), &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "Maria" {
		t.Errorf("answers = %q, want Maria", out.String())
	}
	if !strings.Contains(errw.String(), "1 certain answer") {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestAnswersErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := answersCmd([]string{"R(x | y)", "-"}, strings.NewReader(""), &out, &errw); err == nil {
		t.Error("missing -free should fail")
	}
}

func TestEngineByName(t *testing.T) {
	if _, err := engineByName("bogus"); err == nil {
		t.Error("bogus engine should fail")
	}
	for _, n := range []string{"auto", "rewriting", "direct", "naive"} {
		if _, err := engineByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

func TestExplainCommand(t *testing.T) {
	var out bytes.Buffer
	dbText := "P(p1 | v1)\nP(p2 | v2)\nN(c | v1)\n"
	err := explainCmd([]string{"P(x | y), !N('c' | y)", "-"}, strings.NewReader(dbText), &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, frag := range []string{"Lemma 6.5", "certain: true"} {
		if !strings.Contains(s, frag) {
			t.Errorf("explain output lacks %q:\n%s", frag, s)
		}
	}
	if err := explainCmd([]string{"R(x | y), !S(y | x)", "-"}, strings.NewReader(""), &out); err == nil {
		t.Error("cyclic query should fail to explain")
	}
}

func TestClassifyJSON(t *testing.T) {
	var out bytes.Buffer
	if err := classify([]string{"-json", "R(x | y), !S(y | x)"}, &out); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if parsed["verdict"] != "not-FO" || parsed["hardness"] != "NL-hard" {
		t.Errorf("JSON = %v", parsed)
	}
	out.Reset()
	if err := classify([]string{"-json", "P(x | y), !N('c' | y)"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed["verdict"] != "FO" || parsed["rewriting"] == "" {
		t.Errorf("JSON = %v", parsed)
	}
}

func TestRewriteFlagVariants(t *testing.T) {
	var out bytes.Buffer
	if err := rewriteCmd([]string{"-latex", "P(x | y), !N('c' | y)"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\\forall") {
		t.Errorf("latex output lacks \\forall: %s", out.String())
	}
	out.Reset()
	if err := rewriteCmd([]string{"-prenex", "P(x | y), !N('c' | y)"}, &out); err != nil {
		t.Fatal(err)
	}
	s := strings.TrimSpace(out.String())
	if !strings.HasPrefix(s, "∃") && !strings.HasPrefix(s, "∀") {
		t.Errorf("prenex output should start with a quantifier: %s", s)
	}
}

func TestAttackDOTFlag(t *testing.T) {
	var out bytes.Buffer
	if err := attackCmd([]string{"-dot", "R(x | y), !S(y | x)"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph attack") {
		t.Errorf("DOT output wrong: %s", out.String())
	}
}
