package main

import "testing"

func TestParseMix(t *testing.T) {
	m, err := parseMix("classify=2,certain=5,batch=3")
	if err != nil {
		t.Fatal(err)
	}
	if m.Classify != 2 || m.Certain != 5 || m.Batch != 3 {
		t.Errorf("mix = %+v", m)
	}
	m, err = parseMix("certain=1")
	if err != nil || m.Certain != 1 || m.Classify != 0 {
		t.Errorf("partial mix = %+v, err %v", m, err)
	}
	for _, bad := range []string{"certain", "certain=x", "certain=-1", "bogus=1"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}
