// Command cqaload is the closed-loop load generator for cqad: N clients
// each fire M requests drawn from a classify/certain/batch mix over a
// reproducible internal/gen workload, then the run is summarized
// (throughput, latency percentiles) and optionally validated against
// core.Certain ground truth.
//
// Usage:
//
//	cqaload -url http://localhost:8080 [-clients 4] [-requests 25]
//	        [-seed 1] [-queries 6] [-dbs 4] [-batch 4]
//	        [-mix classify=1,certain=8,batch=1] [-validate]
//	cqaload -url ... -mutate [-writes 40] [-readers 4] [-db mutable]
//	        [-seed 1] [-validate] [-watch]
//	cqaload -url ... -sharded [-read-url ...] [-keys 64] [-writes 100]
//	        [-readers 4] [-reads 100] [-join-every 4] [-db sharded]
//	        [-seed 1] [-validate]
//	cqaload -url ... -obs [-requests 8] [-seed 1]
//
// The default workload is generated locally and shipped inline in each
// request (the /v1/certain and /v1/batch facts field), so cqaload needs
// no preloaded databases on the server.
//
// With -mutate, cqaload instead creates one named database on the server
// and drives it with a single writer (insert/delete batches) and
// -readers concurrent readers on named-database /v1/certain; with
// -validate every served answer is cross-checked against core.Certain on
// the contemporaneous snapshot (the version each response names). Adding
// -watch also subscribes to /v1/watch for a fixed query set before the
// writer starts and cross-checks every pushed flip frame against the
// same contemporaneous shadows: a flip's From must match the verdict the
// stream last settled on, its To must match ground truth at the flip's
// version, and no intermediate version may disagree (a missed flip).
//
// With -sharded, cqaload runs the phased write → quiesce → read workload
// for sharded topologies: writes go to -url (the router or primary),
// reads go to -read-url (default -url; point it at a follower to measure
// replica serving), and the read phase issues only ground-key queries so
// a router touches exactly the shards owning each key. The read-phase
// throughput is the number reported by cmd/shardbench.
//
// With -obs, cqaload is a trace/metric coherence checker instead of a
// load generator: it issues -requests traced explain queries and
// asserts that the X-CQA-Trace response header, the explain block, and
// GET /debug/traces name the same trace with sanely nested spans, and
// that the /metrics Prometheus exposition lints clean and its counters
// moved by at least the traffic sent (see docs/OBSERVABILITY.md).
//
// Exit status: 0 on a clean run, 1 when any request failed or validation
// found a disagreement.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"cqa/internal/loadgen"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "base URL of the cqad server")
	clients := flag.Int("clients", 4, "concurrent closed-loop clients")
	requests := flag.Int("requests", 25, "requests per client")
	seed := flag.Int64("seed", 1, "workload and sequencing seed")
	queries := flag.Int("queries", 6, "distinct queries in the workload")
	dbs := flag.Int("dbs", 4, "databases per query")
	batch := flag.Int("batch", 4, "databases per /v1/batch request")
	mixFlag := flag.String("mix", "classify=1,certain=8,batch=1", "request mix weights")
	validate := flag.Bool("validate", false, "cross-check every served answer against core.Certain")
	mutate := flag.Bool("mutate", false, "drive a mutable named database (writer + readers) instead of the inline mix")
	writes := flag.Int("writes", 40, "write batches issued by the single writer (with -mutate or -sharded)")
	readers := flag.Int("readers", 4, "concurrent readers (with -mutate or -sharded)")
	dbName := flag.String("db", "", "server database name to create and drive (with -mutate or -sharded)")
	sharded := flag.Bool("sharded", false, "run the phased write\u2192quiesce\u2192read ground-key workload for sharded topologies")
	readURL := flag.String("read-url", "", "base URL for -sharded reads (default -url; point at a follower)")
	keys := flag.Int("keys", 64, "block key space (with -sharded)")
	reads := flag.Int("reads", 100, "reads per reader (with -sharded)")
	joinEvery := flag.Int("join-every", 4, "every n-th -sharded read is the confined two-atom join (0 = never)")
	obsMode := flag.Bool("obs", false, "assert trace/metric coherence (traced explain queries + /debug/traces + /metrics lint) instead of generating load")
	watch := flag.Bool("watch", false, "with -mutate: subscribe to /v1/watch and cross-check every pushed flip against contemporaneous shadows")
	flag.Parse()

	modes := 0
	for _, on := range []bool{*sharded, *mutate, *obsMode} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "cqaload: -sharded, -mutate, and -obs are mutually exclusive")
		os.Exit(2)
	}
	if *watch && !*mutate {
		fmt.Fprintln(os.Stderr, "cqaload: -watch requires -mutate")
		os.Exit(2)
	}

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqaload:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *mutate {
		name := *dbName
		if name == "" {
			name = "mutable"
		}
		runMutable(ctx, *url, name, *writes, *readers, *seed, *validate, *watch)
		return
	}
	if *obsMode {
		w := loadgen.NewWorkload(*seed, loadgen.WorkloadOptions{Queries: *queries, DBsPerQuery: *dbs})
		fmt.Printf("obs coherence: %d traced request(s) (seed %d); driving %s\n", *requests, *seed, *url)
		rep, err := loadgen.RunObs(ctx, *url, w, loadgen.ObsOptions{Requests: *requests, Seed: *seed})
		if rep != nil {
			fmt.Println(rep)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqaload: COHERENCE FAILED:", err)
			os.Exit(1)
		}
		return
	}
	if *sharded {
		runSharded(ctx, *url, loadgen.ShardedOptions{
			Database:  *dbName,
			ReadURL:   *readURL,
			Keys:      *keys,
			Writes:    *writes,
			Readers:   *readers,
			Reads:     *reads,
			JoinEvery: *joinEvery,
			Seed:      *seed,
		}, *validate)
		return
	}

	w := loadgen.NewWorkload(*seed, loadgen.WorkloadOptions{Queries: *queries, DBsPerQuery: *dbs})
	fmt.Printf("workload: %d queries × %d databases (seed %d); driving %s\n",
		len(w.Queries), *dbs, *seed, *url)
	rep, err := loadgen.Run(ctx, *url, w, loadgen.Options{
		Clients:   *clients,
		Requests:  *requests,
		Seed:      *seed,
		Mix:       mix,
		BatchSize: *batch,
	})
	if rep != nil {
		fmt.Println(rep)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqaload:", err)
		os.Exit(1)
	}
	if *validate {
		checked, err := loadgen.Validate(rep, w)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqaload: VALIDATION FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("validated %d served answer(s) against core.Certain: all agree\n", checked)
	}
	if rep.Failures > 0 {
		os.Exit(1)
	}
}

// parseMix reads "classify=1,certain=8,batch=1" (parts may be omitted).
func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	if strings.TrimSpace(s) == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("bad mix entry %q (want kind=weight)", part)
		}
		n, err := strconv.Atoi(kv[1])
		if err != nil || n < 0 {
			return m, fmt.Errorf("bad mix weight %q", kv[1])
		}
		switch kv[0] {
		case "classify":
			m.Classify = n
		case "certain":
			m.Certain = n
		case "batch":
			m.Batch = n
		default:
			return m, fmt.Errorf("unknown mix kind %q", kv[0])
		}
	}
	return m, nil
}

// runSharded is the -sharded mode: phased write → quiesce → read.
func runSharded(ctx context.Context, url string, opt loadgen.ShardedOptions, validate bool) {
	fmt.Printf("sharded workload: %d keys, %d writes, %d readers × %d reads; driving %s\n",
		opt.Keys, opt.Writes, opt.Readers, opt.Reads, url)
	rep, err := loadgen.RunSharded(ctx, url, opt)
	if rep != nil {
		fmt.Println(rep)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqaload:", err)
		os.Exit(1)
	}
	if validate {
		checked, err := loadgen.ValidateSharded(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqaload: VALIDATION FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("validated %d served answer(s) against core.Certain on the quiesced shadow: all agree\n", checked)
	}
	if rep.Failures > 0 {
		os.Exit(1)
	}
}

// runMutable is the -mutate mode: read/write mix over one named store,
// optionally with /v1/watch subscriptions collected alongside.
func runMutable(ctx context.Context, url, dbName string, writes, readers int, seed int64, validate, watch bool) {
	fmt.Printf("mutable workload: database %q, %d writes, %d readers (seed %d); driving %s\n",
		dbName, writes, readers, seed, url)
	rep, err := loadgen.RunMutable(ctx, url, loadgen.MutableOptions{
		Database: dbName,
		Writes:   writes,
		Readers:  readers,
		Seed:     seed,
		Watch:    watch,
	})
	if rep != nil {
		fmt.Println(rep)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cqaload:", err)
		os.Exit(1)
	}
	if validate {
		checked, err := loadgen.ValidateMutable(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqaload: VALIDATION FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("validated %d served answer(s) against core.Certain on contemporaneous snapshots: all agree\n", checked)
	}
	if watch {
		checked, err := loadgen.ValidateWatch(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cqaload: WATCH VALIDATION FAILED:", err)
			os.Exit(1)
		}
		flips := 0
		for _, evs := range rep.Watch.Events {
			for _, ev := range evs {
				if ev.Type == "flip" {
					flips++
				}
			}
		}
		fmt.Printf("validated %d watch frame(s) (%d flip(s)) against contemporaneous shadows: zero flip mismatches\n", checked, flips)
	}
	if rep.Failures > 0 {
		os.Exit(1)
	}
}
