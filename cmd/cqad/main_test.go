package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestLoadDatabases(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"people.db": "R(a | 1)\nR(a | 2)\n",
		"towns.db":  "T(x | y)\n",
		"notes.txt": "ignored",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	dbs, err := loadDatabases(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 2 {
		t.Fatalf("loaded %d databases, want 2", len(dbs))
	}
	if dbs["people"] == nil || dbs["people"].Size() != 2 {
		t.Errorf("people database wrong: %v", dbs["people"])
	}
	if dbs["towns"] == nil || dbs["towns"].Relation("T") == nil {
		t.Errorf("towns database wrong")
	}

	if _, err := loadDatabases(""); err != nil {
		t.Errorf("empty dir should be a no-op, got %v", err)
	}
	if _, err := loadDatabases(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing dir should fail")
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.db"), []byte("R(a |"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadDatabases(dir); err == nil || !strings.Contains(err.Error(), "bad.db") {
		t.Errorf("bad fact file should fail with its name, got %v", err)
	}
}

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-max-inflight", "7", "-timeout", "2s", "-pprof"}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "127.0.0.1:0" || cfg.maxInFlight != 7 || cfg.timeout != 2*time.Second || !cfg.pprof {
		t.Errorf("cfg = %+v", cfg)
	}
	if _, err := parseFlags([]string{"trailing"}, devNull(t)); err == nil {
		t.Error("trailing args should fail")
	}
	if _, err := parseFlags([]string{"-bogus"}, devNull(t)); err == nil {
		t.Error("unknown flag should fail")
	}
}

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestRunServesAndDrains boots the daemon on a random port, checks a
// round-trip, sends itself SIGTERM, and expects a clean exit.
func TestRunServesAndDrains(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "people.db"), []byte("R(a | 1)\nR(a | 2)\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(dir, "addr")
	cfg, err := parseFlags([]string{
		"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-dbdir", dir,
		"-drain-timeout", "5s",
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- run(cfg) }()

	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("daemon did not write the addr file in time")
		}
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Post("http://"+addr+"/v1/certain", "application/json",
		strings.NewReader(`{"query": "R(x | y)", "database": "people"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"certain":true`) {
		t.Fatalf("round-trip: %d %s", resp.StatusCode, body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
}
