// Command cqad is the CERTAINTY serving daemon: an HTTP/JSON API over
// the plan-cached engine (internal/server), with admission control,
// per-request timeouts, metrics, and graceful shutdown.
//
// Usage:
//
//	cqad [-addr :8080] [-dbdir dir] [-data dir] [-cache-size 256]
//	     [-workers 0] [-max-inflight 64] [-timeout 10s] [-max-body 1048576]
//	     [-checkpoint-every 1024] [-fsync] [-parallel-eval] [-pprof]
//	     [-pprof-addr :6060] [-trace-sample 1] [-trace-buffer 256]
//	     [-slow-query 0] [-addr-file path]
//
// The database directory is scanned non-recursively for *.db files in
// the cqa fact syntax (one fact per line); each becomes a preloaded
// database addressable by its base name, e.g. people.db → "people".
//
// With -data, named databases are durable: every write is WAL-logged
// under the data directory, periodically checkpointed, and recovered on
// restart (internal/store; see docs/STORE.md). Databases preloaded from
// -dbdir are seeded into the data directory on first boot; after that
// the recovered store wins. Without -data, named databases are
// memory-only versioned stores.
//
// With -shards N, databases the daemon creates are partitioned into N
// shard stores by block key (internal/shard; see docs/SHARDING.md);
// existing databases keep the shard count their files imply.
//
// Two alternative serving roles:
//
//	cqad -route http://s0,http://s1[,...] [-route-replicas http://r0,...]
//	cqad -follow http://primary [-follower-id name]
//
// -route turns the daemon into the scatter-gather tier over N shard
// servers (writes partition by block owner, reads scatter; reads prefer
// the -route-replicas follower of each shard and fall back to its
// primary). -follow turns it into a read-only WAL-shipping follower of
// a primary cqad.
//
// Every request carries a trace ID (minted at this daemon or joined
// from the X-CQA-Trace request header); finished traces are retained in
// a ring served at GET /debug/traces, -slow-query logs traces over the
// threshold, and -trace-sample tunes what fraction of fresh root
// requests record (joined traces always do). /metrics serves Prometheus
// text exposition. See docs/OBSERVABILITY.md.
//
// Endpoints: POST /v1/classify, /v1/certain, /v1/batch,
// /v1/db/{create,insert,delete}; GET /v1/db/info, /v1/db/facts,
// /v1/shards, /v1/wal/stream, /v1/stats, /healthz, /readyz, /metrics,
// /debug/vars, /debug/traces (+ /debug/pprof with -pprof, or on a
// separate listener with -pprof-addr). See docs/SERVING.md.
//
// On SIGINT/SIGTERM the daemon flips /readyz to 503, drains in-flight
// requests (bounded by -drain-timeout), then closes the engine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"cqa/internal/db"
	"cqa/internal/engine"
	"cqa/internal/metrics"
	"cqa/internal/obs"
	"cqa/internal/parse"
	"cqa/internal/server"
	"cqa/internal/shard"
	"cqa/internal/store"
)

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		log.Fatalf("cqad: %v", err)
	}
}

// config is the parsed flag set, separated from flag handling so tests
// can drive run-adjacent helpers directly.
type config struct {
	addr         string
	addrFile     string
	dbDir        string
	dataDir      string
	checkpoint   int
	fsync        bool
	cacheSize    int
	workers      int
	maxInFlight  int
	timeout      time.Duration
	drainTimeout time.Duration
	maxBody      int64
	parallelEval bool
	pprof        bool
	pprofAddr    string
	traceSample  float64
	traceBuffer  int
	slowQuery    time.Duration
	shards       int
	watchHB      time.Duration
	route        string
	replicas     string
	follow       string
	followerID   string
}

func parseFlags(args []string, errw *os.File) (config, error) {
	fs := flag.NewFlagSet("cqad", flag.ContinueOnError)
	fs.SetOutput(errw)
	var c config
	fs.StringVar(&c.addr, "addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	fs.StringVar(&c.addrFile, "addr-file", "", "write the bound address to this file once listening (for scripts)")
	fs.StringVar(&c.dbDir, "dbdir", "", "directory of *.db files preloaded as named databases")
	fs.StringVar(&c.dataDir, "data", "", "data directory for durable named databases (WAL + snapshots); empty = memory-only")
	fs.IntVar(&c.checkpoint, "checkpoint-every", 0, "WAL records between snapshot checkpoints (0 = store default)")
	fs.BoolVar(&c.fsync, "fsync", false, "fsync the WAL on every write batch (durability over throughput)")
	fs.IntVar(&c.cacheSize, "cache-size", 0, "plan cache capacity (0 = engine default)")
	fs.IntVar(&c.workers, "workers", 0, "batch/parallel worker count (0 = GOMAXPROCS)")
	fs.IntVar(&c.maxInFlight, "max-inflight", 0, "max concurrently admitted API requests before shedding with 429 (0 = 64)")
	fs.DurationVar(&c.timeout, "timeout", 0, "per-request timeout (0 = 10s)")
	fs.DurationVar(&c.drainTimeout, "drain-timeout", 30*time.Second, "max time to drain in-flight requests on shutdown")
	fs.Int64Var(&c.maxBody, "max-body", 0, "max request body bytes before 413 (0 = 1 MiB)")
	fs.BoolVar(&c.parallelEval, "parallel-eval", false, "enable the parallel evaluation hot path")
	fs.BoolVar(&c.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	fs.StringVar(&c.pprofAddr, "pprof-addr", "", "serve net/http/pprof on a separate listener at this address (keeps profiling off the API port)")
	fs.Float64Var(&c.traceSample, "trace-sample", 1, "probability a fresh root request records a trace (1 = all, 0 = disabled; joined traces always record)")
	fs.IntVar(&c.traceBuffer, "trace-buffer", 0, "finished traces retained for GET /debug/traces (0 = 256)")
	fs.DurationVar(&c.slowQuery, "slow-query", 0, "log any trace slower than this duration (0 = off)")
	fs.IntVar(&c.shards, "shards", 1, "shard count for databases this daemon creates (block-hash partitioning)")
	fs.DurationVar(&c.watchHB, "watch-heartbeat", 0, "/v1/watch heartbeat cadence (0 = 3s)")
	fs.StringVar(&c.route, "route", "", "comma-separated shard server URLs: serve as the scatter-gather router over them")
	fs.StringVar(&c.replicas, "route-replicas", "", "comma-separated follower URLs, one per -route shard (empty slots allowed); reads prefer them")
	fs.StringVar(&c.follow, "follow", "", "primary URL: serve read-only, replicating its databases over WAL streams")
	fs.StringVar(&c.followerID, "follower-id", "", "follower id registered in the primary's WAL retention floor (with -follow)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(errw, "cqad: unexpected arguments: %v\n", fs.Args())
		return config{}, errors.New("unexpected arguments")
	}
	if c.route != "" && c.follow != "" {
		fmt.Fprintln(errw, "cqad: -route and -follow are mutually exclusive")
		return config{}, errors.New("conflicting modes")
	}
	return c, nil
}

func run(cfg config) error {
	dbs, err := loadDatabases(cfg.dbDir)
	if err != nil {
		return err
	}
	if cfg.dbDir != "" {
		names := make([]string, 0, len(dbs))
		for n := range dbs {
			names = append(names, n)
		}
		log.Printf("cqad: preloaded %d database(s) from %s: %s", len(dbs), cfg.dbDir, strings.Join(names, ", "))
	}

	// The registry and tracer exist before the stores so WAL fsyncs and
	// recovery-era writes land in the same instruments the server
	// exposes at /metrics and /debug/traces.
	reg := metrics.NewRegistry()
	sample := cfg.traceSample
	if sample <= 0 {
		sample = -1 // NewTracer treats the zero value as "record everything"
	}
	tracer := obs.NewTracer(obs.TracerOptions{
		Sample:    sample,
		Buffer:    cfg.traceBuffer,
		SlowQuery: cfg.slowQuery,
		Logf:      log.Printf,
	})

	var stores *shard.Set
	if cfg.dataDir != "" {
		stores, err = shard.OpenSet(store.Options{
			Dir:             cfg.dataDir,
			CheckpointEvery: cfg.checkpoint,
			Sync:            cfg.fsync,
			OnFsync: func(d time.Duration) {
				reg.Histogram("wal_fsync_latency").Observe(d)
			},
		}, cfg.shards)
		if err != nil {
			return err
		}
		defer stores.CloseAll()
		if n := len(stores.Names()); n > 0 {
			log.Printf("cqad: recovered %d durable database(s) from %s: %s",
				n, cfg.dataDir, strings.Join(stores.Names(), ", "))
		}
		// First boot: seed durable stores from the preloaded databases.
		// On later boots the recovered store wins and the .db file is
		// only the original seed.
		for name, d := range dbs {
			if stores.Get(name) != nil {
				continue
			}
			st, err := stores.Create(name)
			if err != nil {
				return fmt.Errorf("seeding %s: %w", name, err)
			}
			if _, err := st.ApplyDB(d); err != nil {
				return fmt.Errorf("seeding %s: %w", name, err)
			}
		}
		dbs = nil // everything is in the set now
	}

	eng := engine.New(engine.Options{
		CacheSize:    cfg.cacheSize,
		Workers:      cfg.workers,
		ParallelEval: cfg.parallelEval,
	})
	baseOpts := server.Options{
		Engine:         eng,
		MaxInFlight:    cfg.maxInFlight,
		RequestTimeout: cfg.timeout,
		MaxBodyBytes:   cfg.maxBody,
		WatchHeartbeat: cfg.watchHB,
		EnablePprof:    cfg.pprof,
		Metrics:        reg,
		Tracer:         tracer,
	}

	var srv *server.Server
	var handler http.Handler
	var stopFollower context.CancelFunc
	var followerDone chan struct{}
	switch {
	case cfg.route != "":
		// Router role: no local stores, scatter-gather over shard servers.
		rt := server.NewRouter(server.RouterOptions{
			Shards:   splitList(cfg.route),
			Replicas: splitList(cfg.replicas),
			Options:  baseOpts,
		})
		srv, handler = rt.Inner(), rt.Handler()
		log.Printf("cqad: routing over %d shard server(s)", len(splitList(cfg.route)))
	case cfg.follow != "":
		// Follower role: read-only serving over replicated stores.
		baseOpts.ReadOnly = true
		srv = server.New(baseOpts)
		handler = srv.Handler()
		f := server.NewFollower(server.FollowerOptions{
			Primary: cfg.follow,
			ID:      cfg.followerID,
			Server:  srv,
			Logf:    log.Printf,
		})
		fctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		stopFollower = cancel
		followerDone = make(chan struct{})
		go func() { f.Run(fctx); close(followerDone) }()
		log.Printf("cqad: following %s (read-only)", cfg.follow)
	default:
		baseOpts.Databases = dbs
		baseOpts.Stores = stores
		baseOpts.Shards = cfg.shards
		srv = server.New(baseOpts)
		handler = srv.Handler()
	}

	if cfg.pprofAddr != "" {
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("cqad: pprof on %s", pln.Addr())
		go func() {
			// Best-effort: profiling dies with the process, no drain needed.
			if err := http.Serve(pln, pmux); err != nil {
				log.Printf("cqad: pprof listener: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	log.Printf("cqad: listening on %s", ln.Addr())
	if cfg.addrFile != "" {
		if err := os.WriteFile(cfg.addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}

	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("cqad: %s received, draining (max %s)", sig, cfg.drainTimeout)
	case err := <-errCh:
		return err // listener failed before any signal
	}

	srv.Drain()
	if stopFollower != nil {
		stopFollower()
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("cqad: drain incomplete: %v", err)
	}
	if followerDone != nil {
		select {
		case <-followerDone:
		case <-time.After(5 * time.Second):
			log.Printf("cqad: follower streams did not stop in time")
		}
	}
	eng.Close()
	if stores != nil {
		if err := stores.CloseAll(); err != nil {
			log.Printf("cqad: closing stores: %v", err)
		}
	}
	log.Printf("cqad: shutdown complete; final stats: %s", eng.Stats())
	return nil
}

// splitList splits a comma-separated flag value, trimming space and
// keeping empty slots ("a,,c" — a shard with no replica).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// loadDatabases reads every *.db file directly under dir (base name sans
// extension → database). An empty dir means no preloaded databases.
func loadDatabases(dir string) (map[string]*db.Database, error) {
	if dir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	dbs := make(map[string]*db.Database)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".db") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		d, err := parse.Database(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		dbs[strings.TrimSuffix(e.Name(), ".db")] = d
	}
	return dbs, nil
}
