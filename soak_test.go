package cqa

import (
	"math/rand"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/direct"
	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
	"cqa/internal/sqlexec"
	"cqa/internal/sqlgen"
)

// TestSoakAllEngines is the repository-wide consistency sweep: random
// weakly-guarded queries with a wider shape distribution than the
// per-package tests, each checked across every engine — naive repair
// enumeration, Algorithm 1, the FO rewriting under both evaluators, and
// the generated SQL under the in-repo SQL engine — plus the parallel
// naive engine and the typed-database transformation.
func TestSoakAllEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(987654))
	opts := gen.QueryOptions{
		MaxPositive: 3,
		MaxNegated:  3,
		MaxArity:    4,
		Vars:        []string{"x", "y", "z", "w", "v"},
		ConstProb:   0.2,
	}
	dbOpts := gen.DBOptions{BlocksPerRelation: 2, MaxBlockSize: 2, DomainPerVariable: 3, ConstantBias: 0.6}

	foChecked, hardChecked := 0, 0
	for foChecked < 60 || hardChecked < 25 {
		q := gen.Query(rng, opts)
		cls, err := core.Classify(q)
		if err != nil {
			t.Fatalf("classify %s: %v", q, err)
		}
		d := gen.Database(rng, q, dbOpts)
		if d.NumRepairs() > 4096 {
			continue // keep the exhaustive ground truth fast
		}
		want := naive.IsCertain(q, d)

		if got := naive.IsCertainParallel(q, d, 3); got != want {
			t.Fatalf("parallel naive = %v, want %v on %s\n%s", got, want, q, d)
		}

		td, err := db.TypeTransform(q, d)
		if err != nil {
			t.Fatalf("type transform %s: %v", q, err)
		}
		if got := naive.IsCertain(q, td); got != want {
			t.Fatalf("typed transform changed answer on %s", q)
		}

		switch cls.Verdict {
		case core.VerdictFO:
			if foChecked >= 60 {
				continue
			}
			foChecked++
			dd := ensure(d, q)
			if got := fo.Eval(dd, cls.Rewriting); got != want {
				t.Fatalf("rewriting = %v, want %v on %s\n%s", got, want, q, d)
			}
			// The reference evaluator is |adom|^rank; keep it feasible.
			cheapRef := fo.QuantifierRank(cls.Rewriting) <= 5
			if cheapRef {
				if got := fo.EvalReference(dd, cls.Rewriting); got != want {
					t.Fatalf("reference eval = %v, want %v on %s", got, want, q)
				}
			}
			if got, err := direct.IsCertain(q, dd); err != nil || got != want {
				t.Fatalf("Algorithm 1 = %v (%v), want %v on %s", got, err, want, q)
			}
			// The SQL executor also pays |adom| per quantifier.
			if cheapRef {
				sql, err := sqlgen.Translate(cls.Rewriting, sqlgen.Options{})
				if err != nil {
					t.Fatalf("sqlgen %s: %v", q, err)
				}
				if got, err := sqlexec.Run(sql, dd); err != nil || got != want {
					t.Fatalf("SQL = %v (%v), want %v on %s", got, err, want, q)
				}
			}
			// Prenexing the rewriting preserves the answer (the active
			// domain is non-empty: generated databases have facts).
			if cheapRef && len(dd.ActiveDomain()) > 0 {
				if got := fo.EvalReference(dd, fo.Prenex(cls.Rewriting)); got != want {
					t.Fatalf("prenex rewriting = %v, want %v on %s", got, want, q)
				}
			}
			// Every pick strategy agrees.
			for _, s := range []rewrite.PickStrategy{rewrite.PickLast, rewrite.PickNegatedFirst} {
				f2, err := rewrite.RewriteOpts(q, rewrite.Options{Pick: s})
				if err != nil {
					t.Fatalf("strategy %d on %s: %v", s, q, err)
				}
				if got := fo.Eval(dd, f2); got != want {
					t.Fatalf("strategy %d = %v, want %v on %s", s, got, want, q)
				}
			}
		case core.VerdictNotFO:
			if hardChecked >= 25 {
				continue
			}
			hardChecked++
			// Hard queries: rewriting and Algorithm 1 must refuse.
			if _, err := rewrite.Rewrite(q); err == nil {
				t.Fatalf("cyclic query %s unexpectedly rewrote", q)
			}
			if _, err := direct.IsCertain(q, d); err == nil {
				t.Fatalf("cyclic query %s unexpectedly accepted by Algorithm 1", q)
			}
			// ♯CERTAINTY consistency: certain iff all repairs satisfy.
			// Counting has no early exit, so cap the repair space.
			if d.NumRepairs() <= 4096 {
				sat, total := naive.CountSatisfyingRepairs(q, d)
				if (sat == total) != want {
					t.Fatalf("counting inconsistent on %s: %d/%d vs %v", q, sat, total, want)
				}
			}
		default:
			t.Fatalf("weakly-guarded query %s out of scope", q)
		}
	}
}

func ensure(d *db.Database, q schema.Query) *db.Database {
	if err := parse.DeclareQueryRelations(d, q); err != nil {
		panic(err)
	}
	return d
}
