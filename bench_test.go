// Package cqa's root benchmark harness: one benchmark family per
// experiment of DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// The absolute numbers depend on the host; EXPERIMENTS.md records the
// shapes that matter (who wins, by what factor, where the crossovers are).
package cqa

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/direct"
	"cqa/internal/engine"
	"cqa/internal/fo"
	"cqa/internal/gen"
	"cqa/internal/matching"
	"cqa/internal/naive"
	"cqa/internal/parse"
	"cqa/internal/reduction"
	"cqa/internal/rewrite"
	"cqa/internal/schema"
	"cqa/internal/special"
)

func figure1() *db.Database {
	return parse.MustDatabase(`
		R(Alice | Bob)
		R(Alice | George)
		R(Maria | Bob)
		R(Maria | John)
		S(Bob | Alice)
		S(Bob | Maria)
		S(George | Alice)
		S(George | Maria)
	`)
}

// E1: certainty of q1 on the Figure 1 database by repair enumeration.
func BenchmarkE1Fig1GirlsBoys(b *testing.B) {
	d := figure1()
	q1 := reduction.Q1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive.IsCertain(q1, d) {
			b.Fatal("q1 must not be certain on Figure 1")
		}
	}
}

// E2: classification (attack graph + rewriting construction) of every
// example query in the paper.
func BenchmarkE2Classify(b *testing.B) {
	queries := []string{
		"R(x | y), S(y | x)",
		"R(x | y), !S(y | x)",
		"R(x, y), !S(x | y), !T(y | x)",
		"P(x | y), !N('c' | y)",
		"S(x), !N1('c' | x), !N2('c' | x), !N3('c' | x)",
		"Mayor(t | p), !Lives(p | t)",
		"Likes(p, t), !Lives(p | t), !Mayor(t | p)",
		"Lives(p | t), !Born(p | t), !Likes(p, t)",
		"Likes(p, t), !Born(p | t), !Lives(p | t)",
		"X(x), Y(y), !R(x | y), !S(y | x)",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range queries {
			if _, err := core.Classify(parse.MustQuery(src)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E3: construction of the q_Hall rewriting by ℓ (exponential output size)
// and its evaluation on a fixed S-COVERING instance.
func BenchmarkE3HallRewriting(b *testing.B) {
	for l := 1; l <= 5; l++ {
		b.Run(fmt.Sprintf("construct/l=%d", l), func(b *testing.B) {
			q := reduction.QHall(l)
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.Rewrite(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for l := 1; l <= 3; l++ {
		b.Run(fmt.Sprintf("evaluate/l=%d", l), func(b *testing.B) {
			q := reduction.QHall(l)
			f, err := rewrite.Rewrite(q)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(6))
			inst := gen.SCovering(rng, 4, l, 0.5)
			d := reduction.SCoveringToQHall(inst)
			if err := parse.DeclareQueryRelations(d, q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fo.Eval(d, f)
			}
		})
	}
}

// E4: the BPM reduction: direct Hopcroft–Karp vs repair enumeration on
// the reduced database.
func BenchmarkE4BPMReduction(b *testing.B) {
	q1 := reduction.Q1()
	for _, n := range []int{3, 5} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := gen.Bipartite(rng, n, 0.35)
		d, err := reduction.BPMToQ1(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("hopcroft-karp/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				matching.HasPerfectMatching(g)
			}
		})
		b.Run(fmt.Sprintf("naive-certainty/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				naive.IsCertain(q1, d)
			}
		})
	}
}

// E5: the UFA reduction end to end.
func BenchmarkE5UFAReduction(b *testing.B) {
	q2 := reduction.Q2()
	for _, n := range []int{3, 5} {
		rng := rand.New(rand.NewSource(int64(n)))
		inst := gen.UFA(rng, n, n)
		b.Run(fmt.Sprintf("reduce+decide/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := reduction.UFAToQ2(inst)
				if err != nil {
					b.Fatal(err)
				}
				naive.IsCertain(q2, d)
			}
		})
	}
}

// E6: the q4 decision procedure vs repair enumeration.
func BenchmarkE6Q4Special(b *testing.B) {
	d := special.Figure3Database()
	q := parse.MustQuery("X(x), Y(y), !R(x | y), !S(y | x)")
	b.Run("special", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !special.Q4Certain(d) {
				b.Fatal("Figure 3 must be certain")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !naive.IsCertain(q, d) {
				b.Fatal("Figure 3 must be certain")
			}
		}
	})
}

// E7: the data-complexity scaling claim: rewriting evaluation and
// Algorithm 1 against repair enumeration on growing databases.
func BenchmarkE7Scaling(b *testing.B) {
	q := parse.MustQuery("Lives(p | t), !Born(p | t), !Likes(p, t)")
	f, err := rewrite.Rewrite(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, blocks := range []int{4, 16, 64, 256} {
		rng := rand.New(rand.NewSource(int64(blocks)))
		opt := gen.DBOptions{BlocksPerRelation: blocks, MaxBlockSize: 2, DomainPerVariable: blocks, ConstantBias: 0.7}
		d := gen.Database(rng, q, opt)
		b.Run(fmt.Sprintf("rewriting/blocks=%d", blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fo.Eval(d, f)
			}
		})
		b.Run(fmt.Sprintf("algorithm1/blocks=%d", blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := direct.IsCertain(q, d); err != nil {
					b.Fatal(err)
				}
			}
		})
		if blocks <= 8 {
			b.Run(fmt.Sprintf("naive/blocks=%d", blocks), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					naive.IsCertain(q, d)
				}
			})
		}
	}
}

// E8: classification throughput on random weakly-guarded queries.
func BenchmarkE8RandomQueries(b *testing.B) {
	rng := rand.New(rand.NewSource(2025))
	opts := gen.DefaultQueryOptions()
	queries := make([]string, 100)
	for i := range queries {
		queries[i] = gen.Query(rng, opts).String()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := parse.MustQuery(queries[i%len(queries)])
		if _, err := core.Classify(q); err != nil {
			b.Fatal(err)
		}
	}
}

// E9: attack-graph construction on chain queries of growing size
// (polynomial-time decidability of the dichotomy test).
func BenchmarkE9AttackGraph(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		q := chainQueryBench(n)
		b.Run(fmt.Sprintf("atoms=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Classify(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E12: the serving engine. cached/prepare must beat cold/prepare by well
// over an order of magnitude — the plan cache reduces repeated queries to
// one signature computation and an LRU lookup, skipping classification
// and rewriting entirely.
func BenchmarkE12PlanCache(b *testing.B) {
	q := chainQueryBench(12)
	b.Run("cold/prepare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Prepare(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached/prepare", func(b *testing.B) {
		e := engine.New(engine.Options{})
		if _, err := e.Prepare(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Prepare(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E12: batch evaluation of ≥ 8 independent checks, sequential loop vs the
// worker pool, and the single-item parallel evaluation hot path vs the
// sequential evaluator. The parallel wins require GOMAXPROCS > 1; on a
// single CPU both modes must at least tie.
func BenchmarkE12Batch(b *testing.B) {
	q := parse.MustQuery("Lives(p | t), !Born(p | t), !Likes(p, t)")
	rng := rand.New(rand.NewSource(12))
	items := make([]engine.Item, 16)
	for i := range items {
		opt := gen.DBOptions{BlocksPerRelation: 128, MaxBlockSize: 2, DomainPerVariable: 64, ConstantBias: 0.7}
		items[i] = engine.Item{Query: q, DB: gen.Database(rng, q, opt)}
	}
	e := engine.New(engine.Options{})
	p, err := e.Prepare(q)
	if err != nil {
		b.Fatal(err)
	}
	for _, it := range items {
		p.Certain(it.DB) // warm memoized db state for both modes
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, it := range items {
				p.Certain(it.DB)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range e.CertainBatch(context.Background(), items) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	big := gen.Database(rng, q, gen.DBOptions{BlocksPerRelation: 2048, MaxBlockSize: 2, DomainPerVariable: 1024, ConstantBias: 0.7})
	f, err := rewrite.Rewrite(q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("eval/sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fo.Eval(big, f)
		}
	})
	b.Run("eval/parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fo.EvalParallel(big, f, 0)
		}
	})
}

// E15: the compiled evaluation pipeline (interned constants, slot-based
// environments, index-driven quantifier restriction; docs/EVAL.md) vs the
// interpreting tree walker on the E-series rewriting workloads. The
// acceptance bar: compiled ≥ 5× faster than fo.Eval at the largest
// database size with ~0 allocs/op in the eval inner loop. Bind cost is
// amortized exactly as in serving (cached per database version).
func BenchmarkE15CompiledEval(b *testing.B) {
	q := parse.MustQuery("Lives(p | t), !Born(p | t), !Likes(p, t)")
	f, err := rewrite.Rewrite(q)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := fo.Compile(f)
	if err != nil {
		b.Fatal(err)
	}
	for _, blocks := range []int{64, 256, 2048} {
		rng := rand.New(rand.NewSource(int64(blocks)))
		opt := gen.DBOptions{BlocksPerRelation: blocks, MaxBlockSize: 2, DomainPerVariable: blocks, ConstantBias: 0.7}
		d := gen.Database(rng, q, opt)
		want := fo.Eval(d, f)
		bound := prog.Bind(d.Interned())
		if bound.Eval() != want {
			b.Fatalf("compiled disagrees with tree walker at blocks=%d", blocks)
		}
		b.Run(fmt.Sprintf("treewalk/blocks=%d", blocks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fo.Eval(d, f)
			}
		})
		b.Run(fmt.Sprintf("compiled/blocks=%d", blocks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bound.Eval()
			}
		})
		b.Run(fmt.Sprintf("compiled-parallel/blocks=%d", blocks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bound.EvalParallel(0, 0)
			}
		})
	}
}

func chainQueryBench(n int) schema.Query {
	src := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			src += ", "
		}
		src += fmt.Sprintf("R%d(x%d | x%d)", i, i, i+1)
	}
	src += ", !N(x0 | x1)"
	return parse.MustQuery(src)
}
